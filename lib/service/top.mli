(** Rendering for [mirage_cli top SOCKET]: one screenful of live
    service state — req/s (derived from the previous poll), outcome and
    cache-hit tallies, per-stage latency quantiles, in-flight count,
    degradations — from a {!Telemetry.snapshot_schema} document. Pure
    (no I/O), so the layout is testable without a daemon. *)

val render : ?prev:float * Obs.Jsonw.t -> now:float -> Obs.Jsonw.t -> string
(** [render ?prev ~now snap] — [prev] is the previous poll's
    [(timestamp, snapshot)], used for the request-rate line; [now] is
    the current timestamp. A counter regression or uptime reset
    between the two polls (a daemon restart) renders as [restarted]
    instead of a meaningless clamped rate. *)

val pp_us : float -> string
(** Humanize a microsecond latency ([12us] / [2.35ms] / [1.23s]). *)
