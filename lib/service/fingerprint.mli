(** Canonical content fingerprint of an optimization request — the key
    of the μGraph result cache.

    Two requests share a fingerprint exactly when the superoptimizer is
    guaranteed to return the same result for both: the fingerprint
    covers the α-converted input graph (tensor/operator names replaced
    positionally), the device's numeric parameters, and the
    search-relevant config fields. Budgets, worker counts, crash
    tolerance and the verify-path switch are excluded
    ({!Search.Config.result_irrelevant_keys}), as is the device's
    display name. *)

type t = string
(** 32 hex characters (MD5 of the canonical JSON). *)

val schema : string

val canonical_graph :
  Mugraph.Graph.kernel_graph -> Mugraph.Graph.kernel_graph
(** The α-converted graph: every [K_input] name replaced by its input
    ordinal ["$0"], ["$1"], … Structure, shapes and operators are
    untouched, so two graphs differing only in tensor names canonicalize
    identically. *)

val canonical_json :
  device:Gpusim.Device.t ->
  config:Search.Config.t ->
  Mugraph.Graph.kernel_graph ->
  Obs.Jsonw.t
(** The exact document that is digested (exposed so tests can assert
    [make a = make b ⟺ canonical_json a = canonical_json b]). *)

val make :
  device:Gpusim.Device.t ->
  config:Search.Config.t ->
  Mugraph.Graph.kernel_graph ->
  t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
