(** Request telemetry for the serving tier: per-stage latency sketches
    ({!Obs.Hdr} — queue wait, cache probe, search, serialize, total),
    exclusive per-outcome counters (hit/miss/coalesced/error, plus a
    degraded tally), and the schema'd snapshot behind the wire
    protocol's [metrics] op.

    One {!sample} accompanies each request through dispatch: stages are
    appended as they complete, the outcome settles once (first write
    wins), and {!finish} folds the sample into the lock-free registry
    metrics exactly once. *)

val snapshot_schema : string
(** ["mirage.service.metrics.v1"]. *)

val stages : string list
(** The closed stage vocabulary:
    [queue_wait; cache_probe; search; serialize; total]. Sketches are
    registered as ["serve." ^ stage]. *)

val outcomes : string list
(** [hit; miss; coalesced; error] — exclusive per optimize request;
    counters are ["serve.outcome." ^ outcome] (plus
    [serve.outcome.degraded], which is not exclusive). *)

type t

val create : ?registry:Obs.Metrics.t -> unit -> t
(** Register the stage sketches and outcome counters (idempotently) in
    [registry] (default: the process-wide one). *)

val registry : t -> Obs.Metrics.t
val uptime_s : t -> float

(** {1 Per-request samples} *)

type sample

val start : rid:string -> op:string -> sample
val add_stage : sample -> string -> float -> unit
(** [add_stage s name dt] appends a completed stage ([dt] seconds). *)

val time_stage : sample -> string -> (unit -> 'a) -> 'a
(** Time [f] and append it as a stage (recorded even if [f] raises). *)

val set_outcome : sample -> string -> unit
(** Settle the outcome; later calls are no-ops, so a coalesced follower
    that subsequently errors stays coalesced. *)

val set_degraded : sample -> unit

val finish : t -> sample -> unit
(** Fold the sample into the metrics: every timed stage into its
    sketch; total latency and the outcome counter only for optimize
    requests (status/metrics polls must not drag p50 down). Idempotent. *)

val sample_rid : sample -> string
val sample_op : sample -> string
val sample_outcome : sample -> string
val sample_degraded : sample -> bool

val sample_total_s : sample -> float
(** Wall time from {!start} to {!finish} (0 until finished). *)

val sample_stages : sample -> (string * float) list
(** Completed stages in execution order, seconds. *)

(** {1 Exposition} *)

val cache_rates : Obs.Metrics.snapshot -> int * int * float
(** [(hits, misses, hit_rate)] derived from the [service.cache.*]
    counters in a registry snapshot; rate is 0 when no lookups ran. *)

val funnel_counters : string list
(** The search funnel counter names surfaced in the snapshot's
    ["search"] section ([search.expanded], the reject counters,
    [search.candidates], [search.verified], …), accumulated across every
    search the process ran. *)

val snapshot_json :
  ?extra:(string * Obs.Jsonw.t) list -> t -> in_flight:int -> unit -> Obs.Jsonw.t
(** The {!snapshot_schema} document: uptime, in-flight, request and
    outcome counts, cache hit rate (derived from the cache counters in
    the registry), journal drop counts, the ["search"] funnel section,
    quantile cards for every [serve.*] and [profile.phase.*] sketch, the
    full counter/gauge dump and — when the ambient {!Obs.Profile} is
    enabled — a compact ["profile"] digest (depth-1 phase seconds and
    prune-rule savings). [extra] fields are appended at top level (the
    server adds cache occupancy). *)

val prometheus : t -> string
(** {!Obs.Prom} rendering of the registry. *)

val check_snapshot : Obs.Jsonw.t -> (unit, string) result
(** Structural validation of a {!snapshot_json} document (schema tag,
    field types/ranges, quantile monotonicity) — used by the CLI and CI
    to reject a malformed scrape at the edge. *)
