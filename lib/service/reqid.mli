(** Request ids: the trace handle joining a client call to its server
    dispatch, single-flight coalescing, cache activity and search
    forensics. {!Client} mints one per request; the server mints one
    for bare frames, so every journal event carries a [rid]. *)

val field : string
(** The request-frame key, ["request_id"]. *)

val fresh : unit -> string
(** A new process-unique id: 16 chars, [[a-z0-9]], leading ['r']. *)

val valid : string -> bool
(** 1–64 chars of [[A-Za-z0-9._:-]] — safe in JSON, shells and file
    names (slow-request report directories are named by id). *)

val of_request : Obs.Jsonw.t -> string option
(** The frame's valid request id, if any. *)

val ensure : Obs.Jsonw.t -> Obs.Jsonw.t * string
(** Return the request carrying an id, minting one if absent (or
    replacing an invalid one). *)
