(** The two-tier μGraph result store: a small in-memory LRU over an
    on-disk content-addressed directory of schema-versioned
    [result.json] entries.

    Disk entries live at [<dir>/<fp[0:2]>/<fp>/result.json] and wrap the
    caller's payload in an envelope carrying {!entry_schema} and the
    fingerprint; writes are atomic (temp + rename). A corrupted entry —
    unreadable, unparsable, wrong schema, mismatched fingerprint — is
    {e quarantined} (renamed to [result.json.quarantined]) and treated
    as a miss, never an exception: a tampered cache degrades the service
    to re-searching, it cannot crash it.

    All traffic is counted in [service.cache.*] ({!Obs.Metrics}):
    [hit.mem], [hit.disk], [miss], [store], [evict], [quarantine]. *)

type t

val entry_schema : string

val create :
  ?mem_capacity:int -> ?registry:Obs.Metrics.t -> dir:string -> unit -> t
(** Opens (and creates if needed) the store rooted at [dir].
    [mem_capacity] bounds the in-memory tier (default 64 results).
    Metrics register in [registry] (default: the process-wide
    registry). Thread-safe. *)

val dir : t -> string

val find : t -> string -> Obs.Jsonw.t option
(** [find t fp] returns the cached payload, promoting disk hits into the
    memory tier. Corrupted disk entries are quarantined and reported as
    a miss. *)

val store : t -> string -> Obs.Jsonw.t -> unit
(** [store t fp payload] writes both tiers. A disk write failure is
    logged and degrades the run ([service.cache.write]) but does not
    raise. *)

val quarantine : t -> string -> reason:string -> unit
(** Forcibly quarantine an entry (both tiers) — used by callers that
    discover a payload is semantically invalid (e.g. its graph fails to
    decode) after {!find} accepted the envelope. *)

val entry_path : t -> string -> string
(** The on-disk path of a fingerprint's [result.json] (exposed for tests
    and forensics). *)

val clear_mem : t -> unit
(** Drop the in-memory tier (simulates a daemon restart over a warm
    disk). *)

val mem_entries : t -> int
val disk_entries : t -> int
