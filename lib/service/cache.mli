(** The two-tier μGraph result store: a small in-memory LRU over an
    on-disk content-addressed directory of schema-versioned
    [result.json] entries.

    Disk entries live at [<dir>/<fp[0:2]>/<fp>/result.json] and wrap the
    caller's payload in an envelope carrying {!entry_schema} and the
    fingerprint. Writes are crash-safe: temp file, fsync, rename, then
    directory fsync — a kill -9 mid-store leaves the old entry, the new
    entry, or an orphaned temp file, never a torn [result.json]. A
    startup recovery sweep quarantines crash residue (orphaned temps
    into [<dir>/quarantine/], truncated or foreign envelopes renamed to
    [result.json.quarantined]); a corrupted entry found later at read
    time — unreadable, unparsable, wrong schema, mismatched fingerprint
    — is quarantined the same way and treated as a miss, never an
    exception: a tampered cache degrades the service to re-searching,
    it cannot crash it.

    The disk tier can carry a byte cap ([max_disk_bytes]): stores that
    push it over the cap evict the least-recently-used entries (disk
    hits refresh mtime). ENOSPC flips the store into memory-only mode
    — flagged through {!Obs.Budget.degrade} ([service.cache.enospc])
    and the [service.cache.mem_only] gauge — instead of failing.

    Result traffic is counted in [service.cache.*] ({!Obs.Metrics}):
    [hit.mem], [hit.disk], [miss], [store], [evict], [evict.disk],
    [quarantine], [recovered]. Prune-cache traffic (ops classed
    [`Prune] — the solver's persisted decision envelopes, see
    {!Prune_store}) counts under [service.prune.*] ([hit], [miss],
    [store]) instead, so the result-cache hit rate stays meaningful. *)

type t

val entry_schema : string

val create :
  ?mem_capacity:int ->
  ?registry:Obs.Metrics.t ->
  ?max_disk_bytes:int ->
  ?recover:bool ->
  dir:string ->
  unit ->
  t
(** Opens (and creates if needed) the store rooted at [dir].
    [mem_capacity] bounds the in-memory tier (default 64 results);
    [max_disk_bytes] bounds the on-disk tier (default 0 = unlimited);
    [recover] (default true) runs the startup recovery sweep. Metrics
    register in [registry] (default: the process-wide registry).
    Thread-safe. *)

val dir : t -> string

val find : ?cls:[ `Result | `Prune ] -> t -> string -> Obs.Jsonw.t option
(** [find t fp] returns the cached payload, promoting disk hits into the
    memory tier (and refreshing their LRU mtime). Corrupted disk entries
    are quarantined and reported as a miss. [cls] (default [`Result])
    selects the metric family the op counts under. *)

val store : ?cls:[ `Result | `Prune ] -> t -> string -> Obs.Jsonw.t -> unit
(** [store t fp payload] writes both tiers durably. ENOSPC degrades the
    store to memory-only mode; any other disk failure is logged and
    degrades the run ([service.cache.write]); neither raises. [cls] as
    in {!find}. *)

val quarantine : t -> string -> reason:string -> unit
(** Forcibly quarantine an entry (both tiers) — used by callers that
    discover a payload is semantically invalid (e.g. its graph fails to
    decode) after {!find} accepted the envelope. *)

val entry_path : t -> string -> string
(** The on-disk path of a fingerprint's [result.json] (exposed for tests
    and forensics). *)

val clear_mem : t -> unit
(** Drop the in-memory tier (simulates a daemon restart over a warm
    disk). *)

val mem_entries : t -> int
val disk_entries : t -> int

val disk_bytes : t -> int
(** Current byte occupancy of the disk tier (tracked incrementally;
    seeded by the recovery sweep). *)

val mem_only : t -> bool
(** True once ENOSPC degraded the store to memory-only mode. *)
