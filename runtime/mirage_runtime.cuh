// mirage_runtime.cuh — device-side primitives referenced by the kernels
// that lib/codegen emits. On a CUDA toolchain these map onto cuTLASS
// collective operations; in this repository they document the exact
// contract each emitted call site relies on (the functional semantics are
// those of lib/mugraph's reference interpreter).
//
// Conventions:
//   * every tile argument is a shared-memory view: a base pointer plus a
//     static shape/stride descriptor carried in the emitted comments;
//   * calls are COLLECTIVE over the thread block: all threads of the
//     block participate, work is partitioned by threadIdx;
//   * no call synchronizes; the emitter inserts __syncthreads() between
//     dependency-depth levels (lib/opt/schedule.ml).

#pragma once
#include <cuda_fp16.h>

// ---- device <-> shared transfers ------------------------------------

// Load one input tile. `imap` partitions the tensor across blockIdx,
// `fmap` across for-loop iterations (paper §2, Fig. 3): a grid/loop
// dimension mapped to a data dimension selects an equal chunk; the
// replica dimension phi replicates. Coalesced bulk copy when the tile's
// innermost dimension is contiguous in device memory (the layout ILP's
// objective, lib/opt/layout_opt.ml).
__device__ void copy_tile(half *dst_smem, const half *src_dmem,
                          const char *imap, const char *fmap, int iter);

// Store an accumulated tile; `omap` maps every grid dimension to a
// distinct data dimension, so blocks write disjoint slices.
__device__ void store_tile(half *dst_dmem, const half *src_smem,
                           const char *omap);

// ---- block-level operators (paper Table 1, column B) ------------------

__device__ void mma_tile(half *out, const half *a, const half *b); // tensor cores
__device__ void concat_mma(half *out, const half *w, const half *x,
                           const half *y, const half *z); // (W||X) x (Y||Z)
__device__ void ew_add(half *out, const half *a, const half *b);
__device__ void ew_sub(half *out, const half *a, const half *b);
__device__ void ew_mul(half *out, const half *a, const half *b);
__device__ void ew_div(half *out, const half *a, const half *b);
__device__ void ew_exp(half *out, const half *a);
__device__ void ew_sqr(half *out, const half *a);
__device__ void ew_sqrt(half *out, const half *a);
__device__ void ew_silu(half *out, const half *a);
__device__ void ew_relu(half *out, const half *a);

// Sum along dimension DIM in groups of GROUP consecutive elements
// (GROUP == extent means a full reduction of that dimension).
template <int DIM, int GROUP>
__device__ void reduce_sum(half *out, const half *a);

template <int DIM, int TIMES>
__device__ void repeat(half *out, const half *a);

// ---- for-loop accumulators (paper §2) ---------------------------------

// fmap phi: out += in (elementwise, in shared memory).
// fmap = data dim: out[chunk(iter)] = in (concatenation).
__device__ void accumulate(half *acc, const half *in, const char *fmap,
                           int iter);
__device__ void zero_fill(half *acc);

// ---- thread-level fragments (paper §4.2 thread graphs) -----------------

// Thread graphs keep intermediates in the register file: load_fragment /
// store_fragment are per-thread and free of shared-memory traffic.
struct fragment;
__device__ fragment load_fragment(const half *smem_tile);
__device__ void store_fragment(half *smem_tile, fragment f);
__device__ fragment ew_add(fragment a, fragment b);
__device__ fragment ew_sub(fragment a, fragment b);
__device__ fragment ew_mul(fragment a, fragment b);
__device__ fragment ew_div(fragment a, fragment b);
__device__ fragment ew_exp(fragment a);
__device__ fragment ew_sqr(fragment a);
__device__ fragment ew_sqrt(fragment a);
__device__ fragment ew_silu(fragment a);
