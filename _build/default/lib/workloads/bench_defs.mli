(** The six DNN benchmarks of paper Table 4, each with the execution plan
    every compared system would produce (paper §8.2 / Figure 7).

    A plan is a complete muGraph; all systems are costed by the same
    simulator and all fused plans are verified equivalent to the
    specification by the test suite (at reduced dimensions — the plans
    are dimension-uniform templates). *)

open Mugraph

type benchmark = {
  name : string;
  description : string;
  base_arch : string;  (** Table 4 column 3 *)
  spec : Graph.kernel_graph;
  systems : (string * Graph.kernel_graph) list;
      (** baseline plans, in Figure 7's legend order *)
  mirage : Graph.kernel_graph;  (** the Mirage-discovered muGraph *)
  reduced : unit -> Graph.kernel_graph * Graph.kernel_graph;
      (** (spec, mirage plan) at reduced dims for equivalence tests *)
}

val gqa : ?batch:int -> unit -> benchmark
(** Group-query attention, LLaMA-3-70B decode under 4-way tensor
    parallelism: 16 query heads and 2 KV heads per GPU, head dim 128,
    context 4096 (paper §8.1). Default batch 8. *)

val qknorm : unit -> benchmark
(** Query-key normalization + attention, Chameleon-7B (32 MHA heads). *)

val rmsnorm : unit -> benchmark
(** RMSNorm + linear, LLaMA-2-7B (the §3 case study, Fig. 4 dims). *)

val lora : unit -> benchmark
(** Low-rank adaptation, rank 16 (Fig. 9). *)

val gated_mlp : unit -> benchmark
(** Gated MLP, Falcon-7B (h = 4544, ffn = 18176; Fig. 10). *)

val ntrans : unit -> benchmark
(** Normalized Transformer block of nGPT-1B (d = 2048). *)

val all : unit -> benchmark list
(** The Figure 7 benchmark set (GQA at batch 8). *)

val by_name : string -> benchmark option
