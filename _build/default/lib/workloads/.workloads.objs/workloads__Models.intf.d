lib/workloads/models.mli: Gpusim Graph Mugraph
