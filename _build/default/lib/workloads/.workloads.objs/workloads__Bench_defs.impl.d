lib/workloads/bench_defs.ml: Baselines Graph List Mugraph String Templates
