lib/workloads/models.ml: Baselines Gpusim Graph List Mugraph Op Templates
