lib/workloads/bench_defs.mli: Graph Mugraph
