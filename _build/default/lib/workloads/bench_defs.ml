open Mugraph
open Baselines

type benchmark = {
  name : string;
  description : string;
  base_arch : string;
  spec : Graph.kernel_graph;
  systems : (string * Graph.kernel_graph) list;
  mirage : Graph.kernel_graph;
  reduced : unit -> Graph.kernel_graph * Graph.kernel_graph;
}

(* LLaMA-3-70B under TP=4: 64/4 = 16 query heads, 8/4 = 2 KV heads per
   GPU, head dim 128 (paper §8.1). Decode: one query token against a
   4096-token KV cache. *)
let gqa ?(batch = 1) () =
  let b = batch and gk = 2 and grp = 8 and s = 4096 and dh = 128 in
  let spec = Templates.attention_spec ~b ~gk ~grp ~s ~dh in
  (* Mirage: blocks = (kv head, kv chunk) with the whole query group in
     one block; the KV split is chosen per scenario so that the grid
     fills the SMs (the §8.2 grid-dimension search). *)
  let split =
    let g = b * gk in
    let rec grow sp = if g * sp >= 128 || sp * 64 >= s then sp else grow (2 * sp) in
    grow 1
  in
  {
    name = "GQA";
    description = "group-query attention (decode)";
    base_arch = "LLaMA-3-70B";
    spec;
    systems =
      [
        ("PyTorch", Templates.attention_unfused ~b ~gk ~grp ~s ~dh);
        ("TASO", Templates.attention_unfused ~b ~gk ~grp ~s ~dh);
        ( "TensorRT-LLM",
          (* fixed heads-only grid: underutilizes at small batch *)
          Templates.attention_fused_heads ~b ~gk ~grp ~s ~dh );
        ( "Triton",
          (* schedule-tuned FlashAttention algorithm, heads-parallel *)
          Templates.attention_fused_heads ~b ~gk ~grp ~s ~dh );
        ( "FlashDecoding",
          (* fixed split-KV heuristic, one query head per block *)
          Templates.attention_fused_split_kv ~b ~gk ~grp ~s ~dh ~split:4
            ~group_in_block:false );
      ];
    mirage =
      Templates.attention_fused_split_kv ~b ~gk ~grp ~s ~dh ~split
        ~group_in_block:true;
    reduced =
      (fun () ->
        ( Templates.attention_spec ~b:2 ~gk:2 ~grp:4 ~s:128 ~dh:8,
          Templates.attention_fused_split_kv ~b:2 ~gk:2 ~grp:4 ~s:128 ~dh:8
            ~split:2 ~group_in_block:true ));
  }

(* Chameleon-7B: 32 multi-head attention heads, head dim 128, decode
   against a 1024-token context. *)
let qknorm () =
  let b = 1 and gk = 32 and grp = 1 and s = 1024 and dh = 128 in
  let spec = Templates.qknorm_attention_spec ~b ~gk ~grp ~s ~dh in
  let unfused = Templates.qknorm_attention_unfused ~b ~gk ~grp ~s ~dh in
  {
    name = "QKNorm";
    description = "QK normalization + attention";
    base_arch = "Chameleon-7B";
    spec;
    systems =
      [
        ("PyTorch", unfused);
        ("TASO", unfused);
        ("TensorRT-LLM", unfused);
        ("Triton", unfused);
        ("FlashAttention", unfused);
      ];
    mirage = Templates.qknorm_attention_fused ~b ~gk ~grp ~s ~dh;
    reduced =
      (fun () ->
        ( Templates.qknorm_attention_spec ~b:1 ~gk:2 ~grp:2 ~s:64 ~dh:8,
          Templates.qknorm_attention_fused ~b:1 ~gk:2 ~grp:2 ~s:64 ~dh:8 ));
  }

(* LLaMA-2-7B RMSNorm + linear, Fig. 4 dimensions. *)
let rmsnorm () =
  let b = 16 and h = 1024 and d = 4096 in
  let spec = Templates.rmsnorm_matmul_spec ~b ~h ~d in
  let unfused = Templates.rmsnorm_matmul_unfused ~b ~h ~d in
  {
    name = "RMSNorm";
    description = "RMS normalization + linear";
    base_arch = "LLaMA-2-7B";
    spec;
    systems =
      [
        ("PyTorch", unfused);
        ("TASO", unfused);
        ("TensorRT", unfused);
        ("Triton", unfused);
      ];
    mirage = Templates.rmsnorm_matmul_fused ~b ~h ~d ~grid:128 ~iters:16;
    reduced =
      (fun () ->
        ( Templates.rmsnorm_matmul_spec ~b:4 ~h:8 ~d:16,
          Templates.rmsnorm_matmul_fused ~b:4 ~h:8 ~d:16 ~grid:2 ~iters:2 ));
  }

(* Rank-16 LoRA on a 4096x4096 linear layer, 16 tokens. *)
let lora () =
  let m = 4096 and k = 4096 and r = 16 and n = 16 in
  let spec = Templates.lora_spec ~m ~k ~r ~n in
  let unfused = Templates.lora_unfused ~m ~k ~r ~n in
  {
    name = "LoRA";
    description = "low-rank adaptation linear";
    base_arch = "GPT-3-7B-LoRA";
    spec;
    systems =
      [
        ("PyTorch", unfused);
        ("TASO", unfused);
        ("TensorRT", unfused);
        ("Triton", unfused);
      ];
    mirage = Templates.lora_fused ~m ~k ~r ~n ~grid:128 ~iters:16;
    reduced =
      (fun () ->
        ( Templates.lora_spec ~m:32 ~k:16 ~r:4 ~n:8,
          Templates.lora_fused ~m:32 ~k:16 ~r:4 ~n:8 ~grid:4 ~iters:2 ));
  }

(* Gated MLP in a scaled Falcon-style configuration (h = 1024,
   ffn = 4096): at full Falcon-7B size the weight streaming dominates
   every plan on the simulator and the comparison degenerates; see
   EXPERIMENTS.md. *)
let gated_mlp () =
  let b = 16 and h = 1024 and f = 4096 in
  let spec = Templates.gated_mlp_spec ~b ~h ~f in
  {
    name = "GatedMLP";
    description = "gated multi-layer perceptron";
    base_arch = "Falcon-7B (scaled)";
    spec;
    systems =
      [
        ("PyTorch", Templates.gated_mlp_unfused ~b ~h ~f);
        ("TASO", Templates.gated_mlp_two_kernel ~b ~h ~f);
        ("TensorRT", Templates.gated_mlp_two_kernel ~b ~h ~f);
        ("Triton", Templates.gated_mlp_two_kernel ~b ~h ~f);
      ];
    mirage = Templates.gated_mlp_fused ~b ~h ~f ~grid:128 ~iters:16;
    reduced =
      (fun () ->
        ( Templates.gated_mlp_spec ~b:4 ~h:16 ~f:32,
          Templates.gated_mlp_fused ~b:4 ~h:16 ~f:32 ~grid:4 ~iters:2 ));
  }

(* nGPT-1B normalized-Transformer residual block: d = 2048, 4096 tokens
   (nGPT targets training, so a full batch of token positions). *)
let ntrans () =
  let b = 4096 and d = 2048 in
  let spec = Templates.ntrans_spec ~b ~d in
  let unfused = Templates.ntrans_unfused ~b ~d in
  {
    name = "nTrans";
    description = "normalized Transformer block";
    base_arch = "nGPT-1B";
    spec;
    systems =
      [
        ("PyTorch", unfused);
        ("TASO", unfused);
        ("TensorRT", unfused);
        ("Triton", unfused);
      ];
    mirage = Templates.ntrans_fused ~b ~d ~grid:1024;
    reduced =
      (fun () ->
        ( Templates.ntrans_spec ~b:4 ~d:32,
          Templates.ntrans_fused ~b:4 ~d:32 ~grid:4 ));
  }

let all () =
  [ gqa (); qknorm (); rmsnorm (); lora (); gated_mlp (); ntrans () ]

let by_name n =
  List.find_opt
    (fun b -> String.lowercase_ascii b.name = String.lowercase_ascii n)
    (all ())
