open Mugraph
open Baselines

type component = {
  label : string;
  baseline : Graph.kernel_graph;
  optimized : Graph.kernel_graph;
}

type model = { name : string; num_layers : int; layer : component list }

let same label g = { label; baseline = g; optimized = g }
let opt label baseline optimized = { label; baseline; optimized }

(* A projection matmul both plans execute identically. *)
let proj ~name ~m ~k ~n =
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld (name ^ "_x") [| m; k |] in
  let w = Graph.Build.input bld (name ^ "_w") [| k; n |] in
  let o = Graph.Build.prim bld Op.Matmul [ x; w ] in
  Graph.Build.finish bld ~outputs:[ o ]

(* Chameleon-7B: 32 layers, 32 MHA heads with QK normalization, hidden
   4096, SwiGLU MLP (11008). Decode with a 1024-token context. *)
let chameleon_7b () =
  let b = 1 and gk = 32 and grp = 1 and s = 1024 and dh = 128 in
  {
    name = "Chameleon-7B";
    num_layers = 32;
    layer =
      [
        opt "rmsnorm-qkv"
          (Templates.rmsnorm_matmul_unfused ~b:1 ~h:4096 ~d:(3 * 4096))
          (Templates.rmsnorm_matmul_fused ~b:1 ~h:4096 ~d:(3 * 4096)
             ~grid:128 ~iters:16);
        opt "qknorm-attention"
          (Templates.qknorm_attention_unfused ~b ~gk ~grp ~s ~dh)
          (Templates.qknorm_attention_fused ~b ~gk ~grp ~s ~dh);
        same "o-proj" (proj ~name:"o" ~m:1 ~k:4096 ~n:4096);
        opt "rmsnorm-up"
          (Templates.rmsnorm_matmul_unfused ~b:1 ~h:4096 ~d:11008)
          (Templates.rmsnorm_matmul_fused ~b:1 ~h:4096 ~d:11008 ~grid:128
             ~iters:16);
        opt "gated-mlp"
          (Templates.gated_mlp_two_kernel ~b:1 ~h:4096 ~f:11008)
          (Templates.gated_mlp_fused ~b:1 ~h:4096 ~f:11008 ~grid:128
             ~iters:32);
      ];
  }

(* nGPT-1B: 24 layers, hidden 2048. *)
let ngpt_1b () =
  let b = 16 and d = 2048 in
  {
    name = "nGPT-1B";
    num_layers = 24;
    layer =
      [
        same "qkv-proj" (proj ~name:"qkv" ~m:b ~k:d ~n:(3 * d));
        opt "attention"
          (Templates.attention_unfused ~b:1 ~gk:16 ~grp:1 ~s:1024 ~dh:128)
          (Templates.attention_fused_split_kv ~b:1 ~gk:16 ~grp:1 ~s:1024
             ~dh:128 ~split:8 ~group_in_block:true);
        opt "ntrans-attn"
          (Templates.ntrans_unfused ~b ~d)
          (Templates.ntrans_fused ~b ~d ~grid:16);
        same "mlp" (proj ~name:"mlp" ~m:b ~k:d ~n:(4 * d));
        opt "ntrans-mlp"
          (Templates.ntrans_unfused ~b ~d)
          (Templates.ntrans_fused ~b ~d ~grid:16);
      ];
  }

(* LLaMA-3-8B: 32 layers, 32 query heads / 8 KV heads, hidden 4096,
   gated MLP 14336. Decode against 4096 tokens. *)
let llama3_8b () =
  let b = 1 and gk = 8 and grp = 4 and s = 4096 and dh = 128 in
  {
    name = "LLaMA-3-8B";
    num_layers = 32;
    layer =
      [
        opt "rmsnorm-qkv"
          (Templates.rmsnorm_matmul_unfused ~b:1 ~h:4096 ~d:(3 * 4096))
          (Templates.rmsnorm_matmul_fused ~b:1 ~h:4096 ~d:(3 * 4096)
             ~grid:128 ~iters:16);
        opt "gqa"
          (Templates.attention_fused_heads ~b ~gk ~grp ~s ~dh)
          (Templates.attention_fused_split_kv ~b ~gk ~grp ~s ~dh ~split:16
             ~group_in_block:true);
        same "o-proj" (proj ~name:"o" ~m:1 ~k:4096 ~n:4096);
        opt "gated-mlp"
          (Templates.gated_mlp_two_kernel ~b:1 ~h:4096 ~f:14336)
          (Templates.gated_mlp_fused ~b:1 ~h:4096 ~f:14336 ~grid:128
             ~iters:32);
      ];
  }

(* GPT-3-7B with rank-16 LoRA adapters on the attention and MLP linears. *)
let gpt3_7b_lora () =
  let m = 4096 and k = 4096 and r = 16 and n = 16 in
  {
    name = "GPT-3-7B-LoRA";
    num_layers = 32;
    layer =
      [
        opt "lora-qkv"
          (Templates.lora_unfused ~m ~k:(3 * k / 3) ~r ~n)
          (Templates.lora_fused ~m ~k ~r ~n ~grid:128 ~iters:16);
        opt "attention"
          (Templates.attention_fused_heads ~b:1 ~gk:32 ~grp:1 ~s:2048
             ~dh:128)
          (Templates.attention_fused_split_kv ~b:1 ~gk:32 ~grp:1 ~s:2048
             ~dh:128 ~split:4 ~group_in_block:true);
        opt "lora-mlp"
          (Templates.lora_unfused ~m:(4 * m) ~k ~r ~n)
          (Templates.lora_fused ~m:(4 * m) ~k ~r ~n ~grid:128 ~iters:16);
      ];
  }

let all () = [ chameleon_7b (); ngpt_1b (); llama3_8b (); gpt3_7b_lora () ]

let latency_us device model ~optimized =
  let layer_us =
    List.fold_left
      (fun acc c ->
        let g = if optimized then c.optimized else c.baseline in
        acc +. (Gpusim.Cost.cost device g).Gpusim.Cost.total_us)
      0.0 model.layer
  in
  layer_us *. float_of_int model.num_layers
