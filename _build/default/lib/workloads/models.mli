(** End-to-end model assemblies for the Figure 11 experiment: PyTorch
    plans vs PyTorch-with-Mirage-kernels plans.

    A model is a stack of identical Transformer layers; each layer is a
    list of sub-programs with a baseline plan and (for the parts Mirage
    optimizes) a Mirage plan. The parts Mirage does not touch (projection
    matmuls, embeddings) appear identically in both plans, so the
    end-to-end speedup is Amdahl-limited exactly as in the paper
    (1.1-1.9x, Fig. 11). *)

open Mugraph

type component = {
  label : string;
  baseline : Graph.kernel_graph;
  optimized : Graph.kernel_graph;  (** equals [baseline] if untouched *)
}

type model = {
  name : string;
  num_layers : int;
  layer : component list;
}

val chameleon_7b : unit -> model
val ngpt_1b : unit -> model
val llama3_8b : unit -> model
val gpt3_7b_lora : unit -> model

val all : unit -> model list

val latency_us :
  Gpusim.Device.t -> model -> optimized:bool -> float
(** Total simulated latency: [num_layers] x sum of component costs. *)
