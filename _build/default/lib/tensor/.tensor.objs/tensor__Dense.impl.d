lib/tensor/dense.ml: Array Buffer Element Format List Printf Shape
