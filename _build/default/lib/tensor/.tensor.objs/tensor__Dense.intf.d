lib/tensor/dense.mli: Element Format Shape
