lib/tensor/layout.ml: Array Format Shape String
