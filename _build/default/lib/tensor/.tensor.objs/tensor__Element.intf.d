lib/tensor/element.mli: Ffield
