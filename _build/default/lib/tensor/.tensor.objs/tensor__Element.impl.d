lib/tensor/element.ml: Ffield Float Fpair Printf Stdlib
