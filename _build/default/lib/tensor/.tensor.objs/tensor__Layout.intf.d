lib/tensor/layout.mli: Format Shape
