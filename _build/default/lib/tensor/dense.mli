(** Dense n-dimensional tensors over an arbitrary element domain.

    Data is stored row-major; layouts (Layout.t) are a cost-model concern
    and never change these functional semantics. Operations take the
    element domain explicitly as an {!Element.ops} record. *)

type 'a t = private { shape : Shape.t; data : 'a array }

val create : Shape.t -> 'a array -> 'a t
(** @raise Invalid_argument if [Array.length data <> Shape.numel shape]. *)

val init : Shape.t -> (int array -> 'a) -> 'a t
(** Element at each coordinate vector (row-major traversal). *)

val fill : Shape.t -> 'a -> 'a t
val scalar : 'a -> 'a t
(** Rank-0 tensor. *)

val of_list : int array -> 'a list -> 'a t
val shape : 'a t -> Shape.t
val numel : 'a t -> int
val get : 'a t -> int array -> 'a
val get_linear : 'a t -> int -> 'a
val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool

val map : ('a -> 'b) -> 'a t -> 'b t

val map2 : 'a Element.ops -> ('a -> 'a -> 'a) -> 'a t -> 'a t -> 'a t
(** Elementwise with right-aligned broadcasting (shapes must be
    broadcast-compatible). *)

val matmul : 'a Element.ops -> 'a t -> 'a t -> 'a t
(** Batched matrix multiplication over the innermost two dimensions;
    leading dimensions are batched with broadcasting (paper Table 1,
    footnote 1). Ranks must be >= 2 and inner dims must agree. *)

val sum_grouped : 'a Element.ops -> dim:int -> group:int -> 'a t -> 'a t
(** Paper's [Sum(d_r, k_r, X)]: along dimension [dim], sum every [group]
    consecutive elements, shrinking that dimension by a factor of
    [group]. [group] must divide the dimension size. A full reduction is
    [group = size of dim]. *)

val repeat : 'a Element.ops -> dim:int -> times:int -> 'a t -> 'a t
(** Tile the tensor [times] times along [dim]. *)

val reshape : int array -> 'a t -> 'a t
(** Same number of elements, row-major reinterpretation. *)

val slice : dim:int -> index:int -> chunks:int -> 'a t -> 'a t
(** Chunk [index] of [chunks] equal parts of dimension [dim] — the
    partitioning primitive behind imap/fmap (paper Fig. 3). *)

val concat : dim:int -> 'a t list -> 'a t
(** Concatenate along [dim]; all other dims must agree. Inverse of
    [slice]; implements omap assembly and fmap concatenation. *)

val add_inplace_like : 'a Element.ops -> 'a t -> 'a t -> 'a t
(** Elementwise sum of two same-shaped tensors (the Accum / phi case). *)

val transpose_last2 : 'a t -> 'a t
(** Swap the innermost two dimensions (rank >= 2). *)

val to_string : ('a -> string) -> 'a t -> string
val pp : (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
