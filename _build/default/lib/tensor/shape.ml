type t = int array

let create dims =
  Array.iter
    (fun d -> if d <= 0 then invalid_arg "Shape.create: dims must be positive")
    dims;
  Array.copy dims

let rank s = Array.length s
let numel s = Array.fold_left ( * ) 1 s
let equal (a : t) (b : t) = a = b

let to_string s =
  "[" ^ String.concat "," (Array.to_list (Array.map string_of_int s)) ^ "]"

let pp fmt s = Format.pp_print_string fmt (to_string s)

let divides s ~chunks ~dim =
  dim >= 0 && dim < rank s && chunks > 0 && s.(dim) mod chunks = 0

let split_dim s ~dim ~chunks =
  if not (divides s ~chunks ~dim) then
    invalid_arg
      (Printf.sprintf "Shape.split_dim: %s dim %d into %d chunks"
         (to_string s) dim chunks);
  let s' = Array.copy s in
  s'.(dim) <- s.(dim) / chunks;
  s'

let scale_dim s ~dim ~times =
  if dim < 0 || dim >= rank s || times <= 0 then
    invalid_arg "Shape.scale_dim";
  let s' = Array.copy s in
  s'.(dim) <- s.(dim) * times;
  s'

let row_major_strides s =
  let n = rank s in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * s.(i + 1)
  done;
  strides

let index_of_coords ~strides coords =
  let acc = ref 0 in
  for i = 0 to Array.length coords - 1 do
    acc := !acc + (coords.(i) * strides.(i))
  done;
  !acc

let coords_of_index s idx =
  let strides = row_major_strides s in
  Array.mapi (fun i _ -> idx / strides.(i) mod s.(i)) s

let iter_coords s f =
  let n = rank s in
  if n = 0 then f [||]
  else begin
    let coords = Array.make n 0 in
    let total = numel s in
    for _ = 1 to total do
      f coords;
      (* Increment the coordinate vector as a mixed-radix counter. *)
      let rec bump i =
        if i >= 0 then begin
          coords.(i) <- coords.(i) + 1;
          if coords.(i) = s.(i) then begin
            coords.(i) <- 0;
            bump (i - 1)
          end
        end
      in
      bump (n - 1)
    done
  end

let broadcast_compatible a b =
  let ra = rank a and rb = rank b in
  let r = min ra rb in
  let ok = ref true in
  for i = 1 to r do
    let da = a.(ra - i) and db = b.(rb - i) in
    if not (da = db || da = 1 || db = 1) then ok := false
  done;
  !ok

let broadcast a b =
  if not (broadcast_compatible a b) then
    invalid_arg
      (Printf.sprintf "Shape.broadcast: %s vs %s" (to_string a) (to_string b));
  let ra = rank a and rb = rank b in
  let r = max ra rb in
  Array.init r (fun i ->
      let da = if i + ra >= r then a.(i + ra - r) else 1 in
      let db = if i + rb >= r then b.(i + rb - r) else 1 in
      max da db)
