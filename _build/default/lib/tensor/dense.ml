type 'a t = { shape : Shape.t; data : 'a array }

let create shape data =
  if Array.length data <> Shape.numel shape then
    invalid_arg
      (Printf.sprintf "Dense.create: %d elements for shape %s"
         (Array.length data) (Shape.to_string shape));
  { shape = Shape.create shape; data = Array.copy data }

let init shape f =
  let shape = Shape.create shape in
  let n = Shape.numel shape in
  if n = 0 then { shape; data = [||] }
  else begin
    let data = Array.make n (f (Shape.coords_of_index shape 0)) in
    let i = ref 0 in
    Shape.iter_coords shape (fun coords ->
        data.(!i) <- f coords;
        incr i);
    { shape; data }
  end

let fill shape v = { shape = Shape.create shape; data = Array.make (Shape.numel shape) v }
let scalar v = { shape = [||]; data = [| v |] }

let of_list shape l = create shape (Array.of_list l)
let shape t = t.shape
let numel t = Array.length t.data

let get t coords =
  let strides = Shape.row_major_strides t.shape in
  t.data.(Shape.index_of_coords ~strides coords)

let get_linear t i = t.data.(i)

let equal eq a b =
  Shape.equal a.shape b.shape
  && Array.for_all2 (fun x y -> eq x y) a.data b.data

let map f t = { shape = t.shape; data = Array.map f t.data }

(* Right-aligned broadcast index: map a coordinate of the result shape to
   the linear index in [t]. *)
let broadcast_get t result_shape =
  let rt = Shape.rank t.shape and rr = Shape.rank result_shape in
  let strides = Shape.row_major_strides t.shape in
  fun coords ->
    let idx = ref 0 in
    for i = 0 to rt - 1 do
      let c = coords.(rr - rt + i) in
      let c = if t.shape.(i) = 1 then 0 else c in
      idx := !idx + (c * strides.(i))
    done;
    t.data.(!idx)

let map2 _ops f a b =
  let result_shape = Shape.broadcast a.shape b.shape in
  let ga = broadcast_get a result_shape and gb = broadcast_get b result_shape in
  init result_shape (fun coords -> f (ga coords) (gb coords))

let matmul ops a b =
  let ra = Shape.rank a.shape and rb = Shape.rank b.shape in
  if ra < 2 || rb < 2 then invalid_arg "Dense.matmul: rank must be >= 2";
  let m = a.shape.(ra - 2) and k = a.shape.(ra - 1) in
  let k' = b.shape.(rb - 2) and n = b.shape.(rb - 1) in
  if k <> k' then
    invalid_arg
      (Printf.sprintf "Dense.matmul: inner dims %d vs %d (shapes %s x %s)" k
         k'
         (Shape.to_string a.shape)
         (Shape.to_string b.shape));
  let batch_a = Array.sub a.shape 0 (ra - 2)
  and batch_b = Array.sub b.shape 0 (rb - 2) in
  let batch = Shape.broadcast batch_a batch_b in
  let result_shape = Array.append batch [| m; n |] in
  let rbatch = Array.length batch in
  (* Pre-fetch broadcast accessors over the batch dims only. *)
  let sa = Shape.row_major_strides a.shape
  and sb = Shape.row_major_strides b.shape in
  let base_of t strides tr coords =
    (* linear offset of the [.,0,0] element of the batch given result batch
       coords; broadcast where the tensor's batch dim is 1. *)
    let rt = tr - 2 in
    let off = ref 0 in
    for i = 0 to rt - 1 do
      let c = coords.(rbatch - rt + i) in
      let c = if t.shape.(i) = 1 then 0 else c in
      off := !off + (c * strides.(i))
    done;
    !off
  in
  init result_shape (fun coords ->
      let bc = Array.sub coords 0 rbatch in
      let i = coords.(rbatch) and j = coords.(rbatch + 1) in
      let base_a = base_of a sa ra bc and base_b = base_of b sb rb bc in
      let acc = ref ops.Element.zero in
      for l = 0 to k - 1 do
        let av = a.data.(base_a + (i * sa.(ra - 2)) + (l * sa.(ra - 1))) in
        let bv = b.data.(base_b + (l * sb.(rb - 2)) + (j * sb.(rb - 1))) in
        acc := ops.Element.add !acc (ops.Element.mul av bv)
      done;
      !acc)

let sum_grouped ops ~dim ~group t =
  let r = Shape.rank t.shape in
  if dim < 0 || dim >= r then invalid_arg "Dense.sum_grouped: bad dim";
  if group <= 0 || t.shape.(dim) mod group <> 0 then
    invalid_arg
      (Printf.sprintf "Dense.sum_grouped: group %d does not divide dim %d"
         group t.shape.(dim));
  let out_shape = Array.copy t.shape in
  out_shape.(dim) <- t.shape.(dim) / group;
  let strides = Shape.row_major_strides t.shape in
  init out_shape (fun coords ->
      let base = Array.copy coords in
      base.(dim) <- coords.(dim) * group;
      let off = Shape.index_of_coords ~strides base in
      let acc = ref ops.Element.zero in
      for g = 0 to group - 1 do
        acc := ops.Element.add !acc t.data.(off + (g * strides.(dim)))
      done;
      !acc)

let repeat _ops ~dim ~times t =
  let r = Shape.rank t.shape in
  if dim < 0 || dim >= r || times <= 0 then invalid_arg "Dense.repeat";
  let out_shape = Shape.scale_dim t.shape ~dim ~times in
  init out_shape (fun coords ->
      let c = Array.copy coords in
      c.(dim) <- coords.(dim) mod t.shape.(dim);
      get t c)

let reshape new_shape t =
  let new_shape = Shape.create new_shape in
  if Shape.numel new_shape <> numel t then
    invalid_arg
      (Printf.sprintf "Dense.reshape: %s -> %s" (Shape.to_string t.shape)
         (Shape.to_string new_shape));
  { shape = new_shape; data = Array.copy t.data }

let slice ~dim ~index ~chunks t =
  let r = Shape.rank t.shape in
  if dim < 0 || dim >= r then invalid_arg "Dense.slice: bad dim";
  if not (Shape.divides t.shape ~chunks ~dim) then
    invalid_arg
      (Printf.sprintf "Dense.slice: %d chunks of dim %d in %s" chunks dim
         (Shape.to_string t.shape));
  if index < 0 || index >= chunks then invalid_arg "Dense.slice: bad index";
  let chunk = t.shape.(dim) / chunks in
  let out_shape = Shape.split_dim t.shape ~dim ~chunks in
  init out_shape (fun coords ->
      let c = Array.copy coords in
      c.(dim) <- (index * chunk) + coords.(dim);
      get t c)

let concat ~dim ts =
  match ts with
  | [] -> invalid_arg "Dense.concat: empty"
  | first :: rest ->
      let r = Shape.rank first.shape in
      if dim < 0 || dim >= r then invalid_arg "Dense.concat: bad dim";
      List.iter
        (fun t ->
          if Shape.rank t.shape <> r then
            invalid_arg "Dense.concat: rank mismatch";
          Array.iteri
            (fun i d ->
              if i <> dim && d <> first.shape.(i) then
                invalid_arg "Dense.concat: shape mismatch off-axis")
            t.shape)
        rest;
      let total = List.fold_left (fun acc t -> acc + t.shape.(dim)) 0 ts in
      let out_shape = Array.copy first.shape in
      out_shape.(dim) <- total;
      let pieces = Array.of_list ts in
      (* Prefix offsets along [dim]. *)
      let offsets = Array.make (Array.length pieces) 0 in
      let acc = ref 0 in
      Array.iteri
        (fun i t ->
          offsets.(i) <- !acc;
          acc := !acc + t.shape.(dim))
        pieces;
      init out_shape (fun coords ->
          let d = coords.(dim) in
          (* Find the piece containing coordinate d. *)
          let rec find i =
            if
              i = Array.length pieces - 1
              || d < offsets.(i) + pieces.(i).shape.(dim)
            then i
            else find (i + 1)
          in
          let i = find 0 in
          let c = Array.copy coords in
          c.(dim) <- d - offsets.(i);
          get pieces.(i) c)

let add_inplace_like ops a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Dense.add_inplace_like: shape mismatch";
  { shape = a.shape; data = Array.map2 ops.Element.add a.data b.data }

let transpose_last2 t =
  let r = Shape.rank t.shape in
  if r < 2 then invalid_arg "Dense.transpose_last2: rank < 2";
  let out_shape = Array.copy t.shape in
  out_shape.(r - 2) <- t.shape.(r - 1);
  out_shape.(r - 1) <- t.shape.(r - 2);
  init out_shape (fun coords ->
      let c = Array.copy coords in
      c.(r - 2) <- coords.(r - 1);
      c.(r - 1) <- coords.(r - 2);
      get t c)

let to_string elt t =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Shape.to_string t.shape);
  Buffer.add_char buf '{';
  let n = min (numel t) 32 in
  for i = 0 to n - 1 do
    if i > 0 then Buffer.add_string buf ", ";
    Buffer.add_string buf (elt t.data.(i))
  done;
  if numel t > n then Buffer.add_string buf ", ...";
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp elt fmt t =
  Format.fprintf fmt "%s{" (Shape.to_string t.shape);
  let n = min (numel t) 32 in
  for i = 0 to n - 1 do
    if i > 0 then Format.fprintf fmt ", ";
    elt fmt t.data.(i)
  done;
  if numel t > n then Format.fprintf fmt ", ...";
  Format.fprintf fmt "}"
