(** Tensor layouts: how a tensor is linearized in (device, shared, or
    register) memory. Layout affects only performance, never function
    (paper §2, "Tensor layout"), so the interpreter ignores it; the cost
    model and the layout optimizer (§6) consume it. *)

type t =
  | Row_major
  | Col_major  (** last two dims swapped; leading dims row-major *)
  | Permuted of int array  (** arbitrary dimension permutation *)

val strides : t -> Shape.t -> int array
(** Memory strides of a shape under the layout. *)

val innermost_dim : t -> Shape.t -> int
(** The data dimension that is contiguous in memory (stride 1). *)

val is_valid : t -> Shape.t -> bool
(** [Permuted p] must be a permutation of [0 .. rank-1]; [Col_major]
    requires rank >= 2. *)

val candidates : Shape.t -> t list
(** The layouts the optimizer enumerates for a tensor of this shape. *)

val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit
