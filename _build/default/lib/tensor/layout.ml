type t = Row_major | Col_major | Permuted of int array

let is_permutation p =
  let n = Array.length p in
  let seen = Array.make n false in
  Array.for_all
    (fun i ->
      if i < 0 || i >= n || seen.(i) then false
      else begin
        seen.(i) <- true;
        true
      end)
    p

let is_valid l shape =
  match l with
  | Row_major -> true
  | Col_major -> Shape.rank shape >= 2
  | Permuted p -> Array.length p = Shape.rank shape && is_permutation p

(* [perm.(i)] gives the position of logical dim i in the memory order,
   from outermost (0) to innermost (rank-1). *)
let perm_of l shape =
  let n = Shape.rank shape in
  match l with
  | Row_major -> Array.init n (fun i -> i)
  | Col_major ->
      if n < 2 then invalid_arg "Layout: Col_major needs rank >= 2";
      Array.init n (fun i ->
          if i = n - 1 then n - 2 else if i = n - 2 then n - 1 else i)
  | Permuted p ->
      if not (is_valid l shape) then invalid_arg "Layout: bad permutation";
      Array.copy p

let strides l shape =
  let n = Shape.rank shape in
  let perm = perm_of l shape in
  (* Order logical dims by memory position, innermost last. *)
  let order = Array.make n 0 in
  Array.iteri (fun logical pos -> order.(pos) <- logical) perm;
  let strides = Array.make n 1 in
  let acc = ref 1 in
  for pos = n - 1 downto 0 do
    let logical = order.(pos) in
    strides.(logical) <- !acc;
    acc := !acc * shape.(logical)
  done;
  strides

let innermost_dim l shape =
  let perm = perm_of l shape in
  let n = Shape.rank shape in
  let inner = ref 0 in
  Array.iteri (fun logical pos -> if pos = n - 1 then inner := logical) perm;
  !inner

let candidates shape =
  if Shape.rank shape >= 2 then [ Row_major; Col_major ] else [ Row_major ]

let equal a b =
  match a, b with
  | Row_major, Row_major | Col_major, Col_major -> true
  | Permuted p, Permuted q -> p = q
  | _ -> false

let to_string = function
  | Row_major -> "row-major"
  | Col_major -> "col-major"
  | Permuted p ->
      "perm("
      ^ String.concat "," (Array.to_list (Array.map string_of_int p))
      ^ ")"

let pp fmt l = Format.pp_print_string fmt (to_string l)
