(** Tensor shapes: immutable arrays of positive dimension sizes.

    Dimension 0 is the outermost. Shapes carry no names; workloads document
    their dimension conventions (paper Fig. 4 uses [b], [h], [d], [s]). *)

type t = int array

val create : int array -> t
(** Validates all dims positive. The array is copied. *)

val rank : t -> int
val numel : t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val divides : t -> chunks:int -> dim:int -> bool
(** Whether [dim]'s size is divisible into [chunks] equal parts
    (the validity condition for imap/omap/fmap partitioning). *)

val split_dim : t -> dim:int -> chunks:int -> t
(** Shape of one chunk after partitioning [dim] into [chunks] parts. *)

val scale_dim : t -> dim:int -> times:int -> t
(** Shape with [dim] multiplied by [times] (concatenation result). *)

val row_major_strides : t -> int array
(** Strides for contiguous row-major layout. *)

val index_of_coords : strides:int array -> int array -> int
val coords_of_index : t -> int -> int array
(** Row-major linearization helpers. *)

val iter_coords : t -> (int array -> unit) -> unit
(** Iterate over all coordinate vectors in row-major order. The callback
    receives a scratch array it must not retain. *)

val broadcast_compatible : t -> t -> bool
(** Numpy-style right-aligned broadcast compatibility (each pair of dims
    equal or one of them 1). *)

val broadcast : t -> t -> t
(** The broadcast result shape. @raise Invalid_argument if incompatible. *)
