(** A small exact 0-1 integer linear programming solver.

    The paper solves tensor-layout selection with Z3's optimization
    engine (§6, "Tensor layouts"); this module is the sealed-container
    substitute. It handles the boolean selection problems the muGraph
    optimizer produces — tens of variables, exactly-one groups, linear
    side constraints, linear objective — by branch and bound with unit
    propagation and objective bounding, returning a provably optimal
    solution. *)

type t
type var = private int

val create : unit -> t

val num_vars : t -> int

val new_var : ?name:string -> t -> var

val add_le : t -> (int * var) list -> int -> unit
(** [add_le p terms b]: Σ cᵢ·xᵢ ≤ b. *)

val add_ge : t -> (int * var) list -> int -> unit
val add_eq : t -> (int * var) list -> int -> unit

val add_exactly_one : t -> var list -> unit
(** Exactly one of the variables is 1 (layout choice per tensor). *)

val add_implies : t -> var -> var -> unit
(** x → y (operator compatibility constraints). *)

val add_forbid_pair : t -> var -> var -> unit
(** ¬(x ∧ y). *)

val set_objective : t -> (float * var) list -> unit
(** Minimize Σ cᵢ·xᵢ; coefficients may be negative. *)

type solution = { values : bool array; objective : float }

val solve : ?node_limit:int -> t -> solution option
(** [None] if infeasible. @raise Failure if [node_limit] search nodes are
    exhausted (default 10 million — far above anything layout selection
    produces). *)

val value : solution -> var -> bool
val var_name : t -> var -> string
