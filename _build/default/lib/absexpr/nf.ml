type atom = A_var of string | A_exp of t | A_sqrt of t | A_silu of t

and dfac = D_atom of atom | D_opaque of t | D_inv of den

and den = { dsum : int; dfacs : dfac list }

and term = { sf : int; num : atom list; den : den }

and t = term list

(* Structural comparison; all payloads are pure data so the polymorphic
   compare is a total order suitable for sorted-multiset canonicity. *)
let compare_atom : atom -> atom -> int = Stdlib.compare
let compare_dfac : dfac -> dfac -> int = Stdlib.compare
let compare_term : term -> term -> int = Stdlib.compare
let compare : t -> t -> int = Stdlib.compare
let equal a b = compare a b = 0

let sort_atoms l = List.sort compare_atom l
let sort_dfacs l = List.sort compare_dfac l
let sort_terms l = List.sort compare_term l

let trivial_den = { dsum = 1; dfacs = [] }
let den_is_trivial d = d.dsum = 1 && d.dfacs = []

(* Whether a denominator contains an opaque sum factor. *)
let has_opaque d =
  List.exists (function D_opaque _ -> true | _ -> false) d.dfacs

(* Canonicalize a denominator: mixed products of atoms and opaque sums are
   route-dependent (div(div(x,y), S) vs div(x, mul(y, S))), so whenever an
   opaque sum is present the whole denominator collapses into a single
   opaque product. "Contains a sum factor" is an A_eq invariant of the
   divisor (sums cannot become products without cancellation), so the
   collapse is canonical. Defined mutually with reify/nf_mul below. *)
let rec normalize_den (d : den) : den =
  if not (has_opaque d) then { d with dfacs = sort_dfacs d.dfacs }
  else { dsum = 1; dfacs = [ D_opaque (reify_raw d) ] }

and reify_raw (d : den) : t =
  let base = [ { sf = d.dsum; num = []; den = trivial_den } ] in
  List.fold_left
    (fun acc f ->
      match f with
      | D_atom a -> nf_mul acc [ { sf = 1; num = [ a ]; den = trivial_den } ]
      | D_opaque n -> nf_mul acc n
      | D_inv dd -> nf_mul acc [ { sf = 1; num = []; den = dd } ])
    base d.dfacs

and den_mul d1 d2 =
  normalize_den
    { dsum = d1.dsum * d2.dsum; dfacs = sort_dfacs (d1.dfacs @ d2.dfacs) }

and term_mul t1 t2 =
  {
    sf = t1.sf * t2.sf;
    num = sort_atoms (t1.num @ t2.num);
    den = den_mul t1.den t2.den;
  }

and nf_mul (n1 : t) (n2 : t) : t =
  sort_terms
    (List.concat_map (fun t1 -> List.map (fun t2 -> term_mul t1 t2) n2) n1)

(* The canonical denominator contributed by a divisor with normal form
   [n]: a single term [sum(sf, Πnum / d)] decomposes into the bare
   reduction factor, its atoms, and the reciprocal of its own denominator
   (axioms div(div(x,y),z) = div(x, mul(y,z)) and
   mul(x, div(y,z)) = div(mul(x,y), z) justify the flattening); a
   multi-term sum stays opaque. *)
let den_of_nf (n : t) : den =
  match n with
  | [ { sf; num; den } ] ->
      let inv = if den_is_trivial den then [] else [ D_inv den ] in
      normalize_den
        { dsum = sf;
          dfacs = sort_dfacs (List.map (fun a -> D_atom a) num @ inv) }
  | _ -> { dsum = 1; dfacs = [ D_opaque n ] }

let rec of_expr (e : Expr.t) : t =
  match e with
  | Expr.Var v -> [ { sf = 1; num = [ A_var v ]; den = trivial_den } ]
  | Expr.Add (a, b) -> sort_terms (of_expr a @ of_expr b)
  | Expr.Mul (a, b) -> nf_mul (of_expr a) (of_expr b)
  | Expr.Div (a, b) ->
      let contribution = den_of_nf (of_expr b) in
      sort_terms
        (List.map
           (fun t -> { t with den = den_mul t.den contribution })
           (of_expr a))
  | Expr.Sum (i, a) ->
      sort_terms (List.map (fun t -> { t with sf = t.sf * i }) (of_expr a))
  | Expr.Exp a -> [ { sf = 1; num = [ A_exp (of_expr a) ]; den = trivial_den } ]
  | Expr.Sqrt a ->
      [ { sf = 1; num = [ A_sqrt (of_expr a) ]; den = trivial_den } ]
  | Expr.Silu a ->
      [ { sf = 1; num = [ A_silu (of_expr a) ]; den = trivial_den } ]

let equivalent e1 e2 = equal (of_expr e1) (of_expr e2)

let nf_var v = [ { sf = 1; num = [ A_var v ]; den = trivial_den } ]
let nf_add a b = sort_terms (a @ b)

let nf_div a b =
  let contribution = den_of_nf b in
  sort_terms (List.map (fun t -> { t with den = den_mul t.den contribution }) a)

let nf_sum i a =
  if i <= 0 then invalid_arg "Nf.nf_sum";
  if i = 1 then a
  else sort_terms (List.map (fun t -> { t with sf = t.sf * i }) a)

let nf_exp a = [ { sf = 1; num = [ A_exp a ]; den = trivial_den } ]
let nf_sqrt a = [ { sf = 1; num = [ A_sqrt a ]; den = trivial_den } ]
let nf_silu a = [ { sf = 1; num = [ A_silu a ]; den = trivial_den } ]

(* Multiset difference over sorted lists: [diff big small] returns the
   remainder if [small] is included in [big]. *)
let rec multiset_diff cmp big small =
  match big, small with
  | rest, [] -> Some rest
  | [], _ :: _ -> None
  | b :: bs, s :: ss ->
      let c = cmp b s in
      if c = 0 then multiset_diff cmp bs ss
      else if c < 0 then
        Option.map (fun r -> b :: r) (multiset_diff cmp bs small)
      else None

(* Exact division of denominators and of whole normal forms. Collapsed
   denominators (single opaque products) require polynomial division: we
   repeatedly peel the leading (maximal) term of the dividend against
   candidate divisor terms. The pairing search makes this exact enough
   for every shape the generator produces; a missed division only weakens
   the subexpression relation, never breaks soundness. *)
let rec den_quotient ~(small : den) ~(big : den) : den option =
  if den_is_trivial small then Some big
  else if not (has_opaque small || has_opaque big) then
    if small.dsum <= 0 || big.dsum mod small.dsum <> 0 then None
    else
      match multiset_diff compare_dfac big.dfacs small.dfacs with
      | None -> None
      | Some rest -> Some { dsum = big.dsum / small.dsum; dfacs = rest }
  else
    match nf_exact_div (reify_raw big) (reify_raw small) with
    | None -> None
    | Some q -> Some (den_of_nf q)

(* Quotient of two terms: q with small * q = big, if it exists. *)
and term_quotient ~(small : term) ~(big : term) : term option =
  if small.sf <= 0 || big.sf mod small.sf <> 0 then None
  else
    match multiset_diff compare_atom big.num small.num with
    | None -> None
    | Some num_rest -> (
        match den_quotient ~small:small.den ~big:big.den with
        | None -> None
        | Some den_rest ->
            Some { sf = big.sf / small.sf; num = num_rest; den = den_rest })

(* Exact multivariate "polynomial" division of term multisets:
   [nf_exact_div p d = Some q] iff q * d = p. *)
and nf_exact_div (p : t) (d : t) : t option =
  match p, d with
  | [], [] -> None
  | [], _ -> Some []
  | _, [] -> None
  | _, [ dt ] ->
      let rec all acc = function
        | [] -> Some (sort_terms acc)
        | pt :: rest -> (
            match term_quotient ~small:dt ~big:pt with
            | Some q -> all (q :: acc) rest
            | None -> None)
      in
      all [] p
  | _ ->
      (* The maximal term of p must be the product of some quotient term
         with some term of d; try every pairing. *)
      let leading l = List.nth l (List.length l - 1) in
      let pl = leading p in
      let try_with dt =
        match term_quotient ~small:dt ~big:pl with
        | None -> None
        | Some q0 -> (
            let prod = sort_terms (List.map (fun t -> term_mul t q0) d) in
            match multiset_diff compare_term p prod with
            | None -> None
            | Some rest -> (
                match nf_exact_div rest d with
                | None -> None
                | Some qs -> Some (sort_terms (q0 :: qs))))
      in
      List.find_map try_with d

let terms_included sub all =
  Option.is_some (multiset_diff compare_term all sub)

(* The denominator as a normal form of its own. *)
let reify_den = reify_raw

let rec is_subexpr (n1 : t) (n2 : t) : bool =
  equal n1 n2 || quotient_subset n1 n2 || nested_subexpr n1 n2

(* Case (a): exists a single term q such that n1 * q is a sub-multiset of
   n2. Derivation in A_sub: n1 <= mul(n1, q) <= add(mul(n1, q), rest).
   The candidate quotients are exactly the quotients of n2's terms by
   n1's first term. *)
and quotient_subset n1 n2 =
  match n1 with
  | [] -> false
  | t1 :: _ ->
      List.exists
        (fun t2 ->
          match term_quotient ~small:t1 ~big:t2 with
          | None -> false
          | Some q ->
              let scaled = sort_terms (List.map (fun t -> term_mul t q) n1) in
              terms_included scaled n2)
        n2

(* Case (b): n1 occurs inside an exp/sqrt/silu argument or inside a term's
   denominator (axioms subexpr(x, exp(x)), subexpr(y, div(x,y)), closed
   under transitivity). *)
and nested_subexpr n1 n2 =
  List.exists
    (fun t ->
      List.exists (fun a -> atom_contains n1 a) t.num
      || (not (den_is_trivial t.den))
         && is_subexpr n1 (reify_den t.den))
    n2

and atom_contains n1 = function
  | A_var _ -> false
  | A_exp i | A_sqrt i | A_silu i -> is_subexpr n1 i

let subexpr e1 e2 = is_subexpr (of_expr e1) (of_expr e2)

let num_terms (n : t) = List.length n

let rec to_string (n : t) =
  String.concat " + " (List.map term_to_string n)

and term_to_string t =
  let num =
    match t.num with
    | [] -> "1"
    | l -> String.concat "*" (List.map atom_to_string l)
  in
  let den = if den_is_trivial t.den then "" else "/(" ^ den_to_string t.den ^ ")" in
  if t.sf = 1 then num ^ den else Printf.sprintf "S%d[%s%s]" t.sf num den

and atom_to_string = function
  | A_var v -> v
  | A_exp i -> Printf.sprintf "exp(%s)" (to_string i)
  | A_sqrt i -> Printf.sprintf "sqrt(%s)" (to_string i)
  | A_silu i -> Printf.sprintf "silu(%s)" (to_string i)

and den_to_string d =
  let facs =
    List.map
      (function
        | D_atom a -> atom_to_string a
        | D_opaque n -> "(" ^ to_string n ^ ")"
        | D_inv dd -> "1/(" ^ den_to_string dd ^ ")")
      d.dfacs
  in
  let facs = if d.dsum = 1 then facs else Printf.sprintf "S%d" d.dsum :: facs in
  String.concat " * " facs

let pp fmt n = Format.pp_print_string fmt (to_string n)

let hash (n : t) = Hashtbl.hash n
