(** Canonical normal forms for abstract expressions modulo the equivalence
    axioms [A_eq] of paper Table 2, and the decision procedure for the
    [subexpr] relation modulo [A_eq ∪ A_sub].

    [A_eq] consists of: AC laws for [add]/[mul], distributivity of [mul]
    and [div] over [add], quotient laws
    [mul(x,div(y,z)) = div(mul(x,y),z)] and
    [div(div(x,y),z) = div(x,mul(y,z))], and the sum laws
    [x = sum(1,x)], [sum(i,sum(j,x)) = sum(i*j,x)], and distribution of
    [sum] over [add]/[mul]/[div].

    These laws rewrite every expression into a multiset of terms
    [sum(sf, a1·…·an / D)] where the [ai] are atoms (variables or opaque
    [exp]/[sqrt]/[silu] applications) and [D] is a canonical denominator —
    a product of a bare reduction factor, atoms, opaque sums, and
    reciprocals of denominators (reciprocals arise from division by a
    quotient, which [A_eq] treats opaquely: there is deliberately no
    cancellation, see paper §4.3). Two expressions are [A_eq]-equivalent
    iff their normal forms are equal. *)

type atom = A_var of string | A_exp of t | A_sqrt of t | A_silu of t

and dfac =
  | D_atom of atom
  | D_opaque of t  (** a sum (>= 2 terms): no law decomposes it *)
  | D_inv of den  (** reciprocal, from dividing by a quotient *)

and den = { dsum : int; dfacs : dfac list }
(** the product [sum(dsum, 1) · Π dfacs]; [dfacs] is a sorted multiset *)

and term = { sf : int; num : atom list; den : den }

and t = term list
(** sorted multiset of terms (an [add] of terms) *)

val trivial_den : den
val den_is_trivial : den -> bool

val of_expr : Expr.t -> t
(** Normalize. Total; worst case exponential in nesting of [mul] over
    [add] (distribution), fine for the expression sizes muGraphs yield. *)

(** {2 Incremental construction}

    The generator maintains normal forms directly — applying one operator
    to already-normalized inputs — so extending a prefix never
    re-normalizes whole expression trees. Each function agrees with
    [of_expr] of the corresponding constructor. *)

val nf_var : string -> t
val nf_add : t -> t -> t
val nf_mul : t -> t -> t
val nf_div : t -> t -> t
val nf_sum : int -> t -> t
val nf_exp : t -> t
val nf_sqrt : t -> t
val nf_silu : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val equivalent : Expr.t -> Expr.t -> bool
(** [A_eq ⊨ e1 = e2], decided by normal-form equality. *)

val is_subexpr : t -> t -> bool
(** [is_subexpr n1 n2] decides [A_eq ∪ A_sub ⊨ subexpr(e1, e2)]:
    true iff (a) [n1] times a single term is a nonempty sub-multiset of
    [n2]'s terms, or (b) [n1] is a subexpression of an expression nested
    inside one of [n2]'s atoms or of a term's (reified) denominator.
    Sound with respect to [A_sub] (every accepted pair is derivable) and
    complete for the prefix/extension pattern of Algorithm 1: an
    operator's input is always accepted against the operator's output —
    the property used in the proof of paper Theorem 1. *)

val subexpr : Expr.t -> Expr.t -> bool
(** [is_subexpr] on the normal forms. *)

val reify_den : den -> t
(** The denominator as a normal form of its own (used by the nested
    subexpression check). *)

val num_terms : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val hash : t -> int
(** Structural hash, stable across equal normal forms (for caches). *)
