lib/absexpr/nf.mli: Expr Format
