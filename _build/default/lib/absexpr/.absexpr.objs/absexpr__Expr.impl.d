lib/absexpr/expr.ml: Format Printf Stdlib Zmodel
