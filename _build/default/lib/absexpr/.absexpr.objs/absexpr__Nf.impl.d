lib/absexpr/nf.ml: Expr Format Hashtbl List Option Printf Stdlib String
