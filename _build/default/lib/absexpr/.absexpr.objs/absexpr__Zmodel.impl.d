lib/absexpr/zmodel.ml:
