lib/absexpr/expr.mli: Format
