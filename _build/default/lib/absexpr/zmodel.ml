(* Tiny modular arithmetic for the A_eq model used by Expr.eval. Kept local
   to avoid a dependency of absexpr on ffield (absexpr is purely symbolic;
   this module exists only to let tests validate the normalizer against a
   concrete model of the axioms). *)

exception Division_by_zero

let normalize ~modulus x =
  let r = x mod modulus in
  if r < 0 then r + modulus else r

let mul ~modulus a b = normalize ~modulus (a * b)

let pow ~modulus b e =
  let rec go acc b e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul ~modulus acc b else acc in
      go acc (mul ~modulus b b) (e asr 1)
  in
  go 1 (normalize ~modulus b) e

let div ~modulus a b =
  let b = normalize ~modulus b in
  if b = 0 then raise Division_by_zero;
  mul ~modulus a (pow ~modulus b (modulus - 2))

(* An arbitrary unary function per [salt]; only needs to be a function. *)
let mix ~modulus salt x =
  normalize ~modulus ((x * x * salt) + (x * 31) + (salt * 17) + 11)
