(** Abstract expressions (paper §4.3, Table 1).

    An abstract expression abstracts the tensor-valued function computed at
    a muGraph edge by ignoring the differences between elements of the same
    input tensor: first-order terms over uninterpreted functions
    [add], [mul], [div], [exp], [sqrt], [silu] and the integer-indexed
    [sum(i, x)] (reduction of [i] elements). Keeping the reduction size [i]
    is what makes the pruning effective (paper Fig. 6 discussion). *)

type t =
  | Var of string  (** an input tensor *)
  | Add of t * t
  | Mul of t * t
  | Div of t * t
  | Exp of t
  | Sqrt of t
  | Silu of t
  | Sum of int * t  (** [sum(i, x)]: reduction of [i] elements of [x] *)

val var : string -> t
val add : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val exp : t -> t
val sqrt : t -> t
val silu : t -> t

val sum : int -> t -> t
(** [sum 1 x = x] (the [x = sum(1,x)] axiom is applied on construction);
    [sum i (Sum (j, x)) = sum (i*j) x]. @raise Invalid_argument if [i <= 0]. *)

val sqr : t -> t
(** [E(Sqr X) = mul (E X) (E X)] (Table 1). *)

val matmul : k:int -> t -> t -> t
(** [E(Matmul(X,Y)) = sum (k, mul (E X) (E Y))] where [k] is the size of
    the reduction dimension (Table 1, footnote 1). *)

val concat_matmul : k1:int -> k2:int -> t -> t -> t -> t -> t
(** The LoRA operator of §8.1:
    [E(f(W,X,Y,Z)) = add (sum k1 (mul W Y)) (sum k2 (mul X Z))]. *)

val size : t -> int
(** Number of constructors (used for bounding tests). *)

val compare : t -> t -> int
val equal_syntactic : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val eval : (string -> int) -> modulus:int -> t -> int
(** Evaluate the expression over [Z_modulus], interpreting [sum i x] as
    [i * x], [exp]/[sqrt]/[silu] as fixed injective-ish hash mixes. Used by
    tests to validate that the normal form respects a model of [A_eq]. *)
