type t =
  | Var of string
  | Add of t * t
  | Mul of t * t
  | Div of t * t
  | Exp of t
  | Sqrt of t
  | Silu of t
  | Sum of int * t

let var v = Var v
let add a b = Add (a, b)
let mul a b = Mul (a, b)
let div a b = Div (a, b)
let exp a = Exp a
let sqrt a = Sqrt a
let silu a = Silu a

let sum i x =
  if i <= 0 then invalid_arg "Expr.sum: reduction size must be positive";
  if i = 1 then x
  else match x with Sum (j, y) -> Sum (i * j, y) | _ -> Sum (i, x)

let sqr x = Mul (x, x)
let matmul ~k x y = sum k (Mul (x, y))

let concat_matmul ~k1 ~k2 w x y z =
  Add (sum k1 (Mul (w, y)), sum k2 (Mul (x, z)))

let rec size = function
  | Var _ -> 1
  | Add (a, b) | Mul (a, b) | Div (a, b) -> 1 + size a + size b
  | Exp a | Sqrt a | Silu a | Sum (_, a) -> 1 + size a

let compare = Stdlib.compare
let equal_syntactic a b = compare a b = 0

let rec to_string = function
  | Var v -> v
  | Add (a, b) -> Printf.sprintf "add(%s,%s)" (to_string a) (to_string b)
  | Mul (a, b) -> Printf.sprintf "mul(%s,%s)" (to_string a) (to_string b)
  | Div (a, b) -> Printf.sprintf "div(%s,%s)" (to_string a) (to_string b)
  | Exp a -> Printf.sprintf "exp(%s)" (to_string a)
  | Sqrt a -> Printf.sprintf "sqrt(%s)" (to_string a)
  | Silu a -> Printf.sprintf "silu(%s)" (to_string a)
  | Sum (i, a) -> Printf.sprintf "sum(%d,%s)" i (to_string a)

let pp fmt e = Format.pp_print_string fmt (to_string e)

(* A model of A_eq over Z_modulus: sum(i,x) |-> i*x; exp/sqrt/silu are
   arbitrary unary functions (hash mixes). Every axiom of Table 2's A_eq
   holds in this model, so normal-form equality must imply equal values. *)
let eval lookup ~modulus e =
  let md x = Zmodel.normalize ~modulus x in
  let rec go = function
    | Var v -> md (lookup v)
    | Add (a, b) -> md (go a + go b)
    | Mul (a, b) -> md (go a * go b)
    | Div (a, b) -> Zmodel.div ~modulus (go a) (go b)
    | Exp a -> Zmodel.mix ~modulus 3 (go a)
    | Sqrt a -> Zmodel.mix ~modulus 5 (go a)
    | Silu a -> Zmodel.mix ~modulus 7 (go a)
    | Sum (i, a) -> md (md i * go a)
  in
  go e
