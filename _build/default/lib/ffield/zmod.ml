exception Division_by_zero

let default_p = 227
let default_q = 113

let normalize ~modulus x =
  let r = x mod modulus in
  if r < 0 then r + modulus else r

let add ~modulus a b = normalize ~modulus (a + b)
let sub ~modulus a b = normalize ~modulus (a - b)

(* Moduli fit in 31 bits, so products fit in 62 bits: native ints suffice. *)
let mul ~modulus a b = normalize ~modulus (a * b)

let pow ~modulus b e =
  assert (e >= 0);
  let rec go acc b e =
    if e = 0 then acc
    else
      let acc = if e land 1 = 1 then mul ~modulus acc b else acc in
      go acc (mul ~modulus b b) (e asr 1)
  in
  go 1 (normalize ~modulus b) e

let inv ~modulus x =
  let x = normalize ~modulus x in
  if x = 0 then raise Division_by_zero;
  pow ~modulus x (modulus - 2)

let div ~modulus a b = mul ~modulus a (inv ~modulus b)

let is_prime n =
  if n < 2 then false
  else if n < 4 then true
  else if n mod 2 = 0 then false
  else
    let rec go d = d * d > n || (n mod d <> 0 && go (d + 2)) in
    go 3

(* Order of the multiplicative group is modulus - 1; an element g generates
   it iff g^((modulus-1)/f) <> 1 for every prime factor f. *)
let primitive_root ~modulus =
  let phi = modulus - 1 in
  let factors =
    let rec go n d acc =
      if d * d > n then if n > 1 then n :: acc else acc
      else if n mod d = 0 then
        let rec strip n = if n mod d = 0 then strip (n / d) else n in
        go (strip n) (d + 1) (d :: acc)
      else go n (d + 1) acc
    in
    go phi 2 []
  in
  let generates g =
    List.for_all (fun f -> pow ~modulus g (phi / f) <> 1) factors
  in
  let rec find g =
    if g >= modulus then invalid_arg "primitive_root: modulus not prime?"
    else if generates g then g
    else find (g + 1)
  in
  find 2

let roots_of_unity ~p ~q =
  if (p - 1) mod q <> 0 then
    invalid_arg "roots_of_unity: q must divide p - 1";
  let g = primitive_root ~modulus:p in
  let w = pow ~modulus:p g ((p - 1) / q) in
  (* w has multiplicative order exactly q; its powers enumerate the roots. *)
  let rec go acc x i =
    if i = q then List.rev acc else go (x :: acc) (mul ~modulus:p x w) (i + 1)
  in
  go [] 1 0

let random_root_of_unity ~p ~q st =
  if (p - 1) mod q <> 0 then
    invalid_arg "random_root_of_unity: q must divide p - 1";
  let g = primitive_root ~modulus:p in
  let w = pow ~modulus:p g ((p - 1) / q) in
  pow ~modulus:p w (Random.State.int st q)

(* Tonelli–Shanks; only needed by property tests. *)
let sqrt_opt ~modulus n =
  let p = modulus in
  let n = normalize ~modulus n in
  if n = 0 then Some 0
  else if pow ~modulus n ((p - 1) / 2) <> 1 then None
  else if p mod 4 = 3 then Some (pow ~modulus n ((p + 1) / 4))
  else begin
    (* Write p - 1 = q0 * 2^s with q0 odd. *)
    let rec split q0 s = if q0 mod 2 = 0 then split (q0 / 2) (s + 1) else (q0, s) in
    let q0, s = split (p - 1) 0 in
    let rec find_non_residue z =
      if pow ~modulus z ((p - 1) / 2) = p - 1 then z else find_non_residue (z + 1)
    in
    let z = find_non_residue 2 in
    let m = ref s
    and c = ref (pow ~modulus z q0)
    and t = ref (pow ~modulus n q0)
    and r = ref (pow ~modulus n ((q0 + 1) / 2)) in
    let rec loop () =
      if !t = 1 then Some !r
      else begin
        let rec order i t2 =
          if t2 = 1 then i else order (i + 1) (mul ~modulus t2 t2)
        in
        let i = order 0 !t in
        if i = !m then None
        else begin
          let b = pow ~modulus !c (1 lsl (!m - i - 1)) in
          m := i;
          c := mul ~modulus b b;
          t := mul ~modulus !t !c;
          r := mul ~modulus !r b;
          loop ()
        end
      end
    in
    loop ()
  end
