lib/ffield/fpair.mli: Format Random
