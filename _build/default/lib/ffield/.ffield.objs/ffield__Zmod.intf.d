lib/ffield/zmod.mli: Random
