lib/ffield/zmod.ml: List Random
