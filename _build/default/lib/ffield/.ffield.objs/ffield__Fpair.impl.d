lib/ffield/fpair.ml: Format Random Zmod
