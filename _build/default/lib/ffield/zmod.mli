(** Arithmetic in the ring of integers modulo [m] (prime moduli give the
    finite field [Z_m] used by Mirage's probabilistic verifier, paper §5).

    All values are canonical representatives in [0, m). Operations take the
    modulus explicitly so callers can work with several fields at once
    (Mirage uses [Z_p] outside exponents and [Z_q] inside them). *)

exception Division_by_zero
(** Raised by [inv] and [div] when the divisor is [0] modulo [m]. *)

val normalize : modulus:int -> int -> int
(** [normalize ~modulus x] is the canonical representative of [x] in
    [0, modulus). Works for negative [x]. *)

val add : modulus:int -> int -> int -> int
val sub : modulus:int -> int -> int -> int
val mul : modulus:int -> int -> int -> int

val pow : modulus:int -> int -> int -> int
(** [pow ~modulus b e] is [b^e mod modulus] by binary exponentiation;
    [e] must be non-negative. *)

val inv : modulus:int -> int -> int
(** Multiplicative inverse modulo a prime (Fermat's little theorem).
    @raise Division_by_zero on 0. *)

val div : modulus:int -> int -> int -> int
(** [div ~modulus a b = a * inv b]. @raise Division_by_zero if [b = 0]. *)

val is_prime : int -> bool
(** Deterministic trial-division primality test (moduli here are small). *)

val primitive_root : modulus:int -> int
(** A generator of the multiplicative group of [Z_modulus] ([modulus]
    prime). Used to construct roots of unity. *)

val roots_of_unity : p:int -> q:int -> int list
(** All [q]-th roots of unity in [Z_p]; requires [q] divides [p - 1]
    (the side condition of paper Theorem 2). *)

val random_root_of_unity : p:int -> q:int -> Random.State.t -> int
(** A uniformly random [q]-th root of unity in [Z_p]. *)

val sqrt_opt : modulus:int -> int -> int option
(** Modular square root by Tonelli–Shanks if one exists (used only by
    tests; the verifier abstracts Sqrt instead, see DESIGN.md). *)

val default_p : int
(** 227 — the paper's choice of [p] (largest [p*q < 2^16] with [q | p-1]). *)

val default_q : int
(** 113 — the paper's choice of [q]. *)
