(** The product domain [Z_p x Z_q] over which Mirage runs random tests
    (paper Table 3). [Z_p] is used outside exponents, [Z_q] inside them;
    exponentiation maps the [Z_q] component to [Z_p] via a [q]-th root of
    unity omega: [exp (xp, xq) = (omega^xq mod p, _)].

    After an exponentiation, the [Z_q] component is no longer defined; LAX
    muGraphs apply at most one exponentiation per input-output path
    (Definition 5.1), so a second [exp] on such a value is a bug in the
    caller and raises [Not_lax]. *)

type ctx = private { p : int; q : int; omega : int }
(** Field parameters plus the sampled root of unity. *)

exception Not_lax
(** Raised when [exp] is applied to a value whose [Z_q] component has
    already been consumed by a previous exponentiation. *)

exception Unsupported of string
(** Raised by operations with no finite-field semantics ([sqrt], [silu]);
    the verifier abstracts these away first (DESIGN.md §2). *)

type t = { vp : int; vq : int option }
(** A test value: component in [Z_p], and in [Z_q] unless consumed. *)

val make_ctx : ?p:int -> ?q:int -> omega:int -> unit -> ctx
(** Build a context; checks that [p], [q] are prime, [q] divides [p-1],
    and [omega] is a [q]-th root of unity in [Z_p]. Defaults are the
    paper's p = 227, q = 113. *)

val random_ctx : ?p:int -> ?q:int -> Random.State.t -> ctx
(** Context with a uniformly random root of unity. *)

val of_int : ctx -> int -> t
val zero : t
val one : t
val equal : t -> t -> bool
(** Equality compares the [Z_p] component (the output component); the
    [Z_q] component must agree when both are defined. *)

val add : ctx -> t -> t -> t
val sub : ctx -> t -> t -> t
val mul : ctx -> t -> t -> t

val div : ctx -> t -> t -> t
(** @raise Zmod.Division_by_zero when the divisor has a zero component
    (the event complement of [E] in Theorem 2; the verifier resamples). *)

val exp : ctx -> t -> t
(** [exp c x = (omega^{x.vq} mod p, undefined)]. @raise Not_lax if
    [x.vq] was already consumed. *)

val sqrt : ctx -> t -> t
(** @raise Unsupported always (abstracted by the verifier). *)

val silu : ctx -> t -> t
(** @raise Unsupported always (abstracted by the verifier). *)

val random : ctx -> Random.State.t -> t
(** Uniform element of [Z_p x Z_q]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
