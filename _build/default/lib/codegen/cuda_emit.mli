(** Pseudo-CUDA emission for muGraphs — the stand-in for the paper's JIT
    path (§7: "Mirage produces CUDA source code for all custom kernels
    ... and compiles the code into binary").

    Without nvcc in the environment, this emitter produces human-readable
    CUDA-style source that documents exactly what the real backend would
    generate: one [__global__] function per graph-defined operator with
    grid dimensions, shared-memory buffers at the offsets chosen by the
    memory planner, the for-loop with input-iterator tile loads, operator
    calls in the depth-ordered schedule with [__syncthreads()] at depth
    boundaries, the accumulator updates, and the epilogue with output
    stores. Pre-defined kernel operators become cuBLAS/cuDNN-style
    library calls in the host launcher. *)

open Mugraph

val emit_kernel : name:string -> Graph.kernel_graph -> string
(** Full translation unit: kernels + host launcher. *)

val emit_block_kernel :
  name:string ->
  Graph.block_graph ->
  kernel_inputs:Tensor.Shape.t list ->
  string
(** One custom kernel. *)

val loc : string -> int
(** Lines of emitted code (for reporting). *)
