open Mugraph

let shape_str s =
  String.concat "][" (Array.to_list (Array.map string_of_int s))

let dims_str a =
  match Array.length a with
  | 0 -> "1"
  | _ -> String.concat ", " (Array.to_list (Array.map string_of_int a))

let op_call (p : Op.prim) args out =
  match p with
  | Op.Matmul -> Printf.sprintf "mma_tile(%s, %s, %s);" out (List.nth args 0) (List.nth args 1)
  | Op.Binary b ->
      let f =
        match b with
        | Op.Add -> "ew_add"
        | Op.Mul -> "ew_mul"
        | Op.Div -> "ew_div"
        | Op.Sub -> "ew_sub"
      in
      Printf.sprintf "%s(%s, %s, %s);" f out (List.nth args 0) (List.nth args 1)
  | Op.Unary u ->
      let f =
        match u with
        | Op.Exp -> "ew_exp"
        | Op.Sqr -> "ew_sqr"
        | Op.Sqrt -> "ew_sqrt"
        | Op.Silu -> "ew_silu"
        | Op.Relu -> "ew_relu"
      in
      Printf.sprintf "%s(%s, %s);" f out (List.nth args 0)
  | Op.Sum { dim; group } ->
      Printf.sprintf "reduce_sum<%d, %d>(%s, %s);" dim group out (List.nth args 0)
  | Op.Repeat { dim; times } ->
      Printf.sprintf "repeat<%d, %d>(%s, %s);" dim times out (List.nth args 0)
  | Op.Reshape _ | Op.Transpose ->
      Printf.sprintf "/* %s: view of %s */ auto &%s = %s;" (Op.name p)
        (List.nth args 0) out (List.nth args 0)
  | Op.Concat_matmul ->
      Printf.sprintf "concat_mma(%s, %s, %s, %s, %s);" out (List.nth args 0)
        (List.nth args 1) (List.nth args 2) (List.nth args 3)

let emit_thread_graph buf indent (tg : Graph.thread_graph) ins out =
  let pad = String.make indent ' ' in
  Buffer.add_string buf
    (Printf.sprintf
       "%s{ // thread graph: intermediates in the register file\n" pad);
  Array.iteri
    (fun i (node : Graph.thread_node) ->
      match node.top with
      | Graph.T_input k ->
          Buffer.add_string buf
            (Printf.sprintf "%s  auto r%d = load_fragment(%s);\n" pad i
               (List.nth ins k))
      | Graph.T_prim p ->
          let args = List.map (Printf.sprintf "r%d") node.tins in
          Buffer.add_string buf
            (Printf.sprintf "%s  auto r%d = %s\n" pad i
               (op_call p args (Printf.sprintf "r%d" i))))
    tg.tnodes;
  Buffer.add_string buf
    (Printf.sprintf "%s  store_fragment(%s, r%d);\n%s}\n" pad out
       (Array.length tg.tnodes - 1)
       pad)

let emit_block_kernel ~name (bg : Graph.block_graph) ~kernel_inputs =
  let buf = Buffer.create 1024 in
  let shapes = Infer.block_shapes bg ~kernel_inputs in
  let sched = Opt.Schedule.block_schedule bg in
  let plan = Opt.Memplan.plan_block ~elt_bytes:2 bg ~kernel_inputs in
  let post = Graph.post_loop_nodes bg in
  let offset i =
    match List.assoc_opt i plan.Opt.Memplan.offsets with
    | Some o -> o
    | None -> 0
  in
  Buffer.add_string buf
    (Printf.sprintf
       "// grid(%s) forloop(%s), %d B shared memory (planner: %s)\n"
       (dims_str bg.grid) (dims_str bg.forloop) plan.Opt.Memplan.peak_bytes
       (if plan.Opt.Memplan.optimal then "optimal" else "first-fit"));
  Buffer.add_string buf
    (Printf.sprintf "__global__ void %s(half **dmem_in, half **dmem_out) {\n"
       name);
  Buffer.add_string buf
    (Printf.sprintf "  extern __shared__ half smem[]; // %d bytes planned\n"
       plan.Opt.Memplan.peak_bytes);
  (* shared-memory views *)
  Array.iteri
    (fun i (node : Graph.block_node) ->
      match node.bop with
      | Graph.B_outsaver _ -> ()
      | _ ->
          Buffer.add_string buf
            (Printf.sprintf "  auto s%d /*[%s]*/ = smem + %d;\n" i
               (shape_str shapes.(i)) (offset i / 2)))
    bg.bnodes;
  (* accumulator initialization *)
  Array.iteri
    (fun i (node : Graph.block_node) ->
      match node.bop with
      | Graph.B_accum _ ->
          Buffer.add_string buf (Printf.sprintf "  zero_fill(s%d);\n" i)
      | _ -> ())
    bg.bnodes;
  let iters = Graph.total_iters bg in
  Buffer.add_string buf (Printf.sprintf "  for (int i = 0; i < %d; ++i) {\n" iters);
  (* loop body in schedule order, with a barrier between depth levels *)
  let last_depth = ref (-1) in
  let emit_node i =
    let node = bg.bnodes.(i) in
    let depth = sched.Opt.Schedule.depths.(i) in
    let skip =
      (* accumulators update inside the loop even though their combined
         value is epilogue-only; other post-loop nodes wait *)
      post.(i)
      && match node.Graph.bop with Graph.B_accum _ -> false | _ -> true
    in
    if not skip then begin
      if depth <> !last_depth && !last_depth >= 0 then
        Buffer.add_string buf "    __syncthreads();\n";
      last_depth := depth;
      match node.Graph.bop with
      | Graph.B_initer { input; imap; fmap } ->
          Buffer.add_string buf
            (Printf.sprintf
               "    copy_tile(s%d, dmem_in[%d], /*imap*/ \"%s\", /*fmap*/ \"%s\", i);\n"
               i input
               (Dmap.imap_to_string imap)
               (Dmap.fmap_to_string fmap))
      | Graph.B_prim p ->
          let args = List.map (Printf.sprintf "s%d") node.Graph.bins in
          Buffer.add_string buf
            (Printf.sprintf "    %s\n" (op_call p args (Printf.sprintf "s%d" i)))
      | Graph.B_threadgraph tg ->
          let ins = List.map (Printf.sprintf "s%d") node.Graph.bins in
          emit_thread_graph buf 4 tg ins (Printf.sprintf "s%d" i)
      | Graph.B_accum { fmap } ->
          Buffer.add_string buf
            (Printf.sprintf "    accumulate(s%d, s%d, /*fmap*/ \"%s\", i);\n"
               i (List.hd node.Graph.bins)
               (Dmap.fmap_to_string fmap))
      | Graph.B_outsaver _ -> ()
    end
  in
  List.iter emit_node sched.Opt.Schedule.order;
  Buffer.add_string buf "  }\n  __syncthreads();\n";
  (* epilogue *)
  List.iter
    (fun i ->
      if post.(i) then begin
        let node = bg.bnodes.(i) in
        match node.Graph.bop with
        | Graph.B_accum _ -> () (* already materialized in s<i> *)
        | Graph.B_prim p ->
            let args = List.map (Printf.sprintf "s%d") node.Graph.bins in
            Buffer.add_string buf
              (Printf.sprintf "  %s\n" (op_call p args (Printf.sprintf "s%d" i)))
        | Graph.B_threadgraph tg ->
            let ins = List.map (Printf.sprintf "s%d") node.Graph.bins in
            emit_thread_graph buf 2 tg ins (Printf.sprintf "s%d" i)
        | Graph.B_initer _ | Graph.B_outsaver _ -> ()
      end)
    sched.Opt.Schedule.order;
  let out_idx = ref 0 in
  Array.iteri
    (fun i (node : Graph.block_node) ->
      match node.Graph.bop with
      | Graph.B_outsaver { omap } ->
          Buffer.add_string buf
            (Printf.sprintf
               "  store_tile(dmem_out[%d], s%d, /*omap*/ \"%s\");\n" !out_idx
               (List.hd node.Graph.bins)
               (Dmap.omap_to_string omap));
          incr out_idx;
          ignore i
      | _ -> ())
    bg.bnodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let emit_kernel ~name (g : Graph.kernel_graph) =
  let buf = Buffer.create 2048 in
  let shapes = Infer.kernel_shapes g in
  Buffer.add_string buf
    (Printf.sprintf "// Mirage-generated program: %s\n" name);
  Buffer.add_string buf "#include \"mirage_runtime.cuh\"\n\n";
  let kernel_names = Hashtbl.create 4 in
  Array.iteri
    (fun i (node : Graph.kernel_node) ->
      match node.kop with
      | Graph.K_graphdef bg ->
          let kname = Printf.sprintf "%s_kernel_%d" name i in
          Hashtbl.replace kernel_names i kname;
          let kernel_inputs =
            List.map
              (fun ({ node = j; port } : Graph.tensor_ref) ->
                shapes.(j).(port))
              node.kins
          in
          Buffer.add_string buf (emit_block_kernel ~name:kname bg ~kernel_inputs);
          Buffer.add_string buf "\n"
      | Graph.K_input _ | Graph.K_prim _ -> ())
    g.knodes;
  Buffer.add_string buf (Printf.sprintf "void %s_launch(Tensors &t) {\n" name);
  Array.iteri
    (fun i (node : Graph.kernel_node) ->
      match node.kop with
      | Graph.K_input { name = n; shape } ->
          Buffer.add_string buf
            (Printf.sprintf "  // t[%d] = input %s [%s]\n" i n (shape_str shape))
      | Graph.K_prim p ->
          Buffer.add_string buf
            (Printf.sprintf "  library_call_%s(t, %d); // %s\n"
               (String.lowercase_ascii (Op.name p))
               i (Op.to_string p))
      | Graph.K_graphdef bg ->
          Buffer.add_string buf
            (Printf.sprintf "  %s<<<dim3(%s), dim3(128), %d>>>(t.in(%d), t.out(%d));\n"
               (Hashtbl.find kernel_names i)
               (dims_str bg.grid)
               (Opt.Memplan.plan_block ~elt_bytes:2 bg
                  ~kernel_inputs:
                    (List.map
                       (fun ({ node = j; port } : Graph.tensor_ref) ->
                         shapes.(j).(port))
                       node.kins))
                 .Opt.Memplan.peak_bytes
               i i))
    g.knodes;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let loc s =
  List.length (String.split_on_char '\n' s)
