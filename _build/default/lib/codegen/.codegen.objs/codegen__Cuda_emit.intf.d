lib/codegen/cuda_emit.mli: Graph Mugraph Tensor
