lib/codegen/cuda_emit.ml: Array Buffer Dmap Graph Hashtbl Infer List Mugraph Op Opt Printf String
