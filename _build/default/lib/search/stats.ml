type snapshot = {
  expanded : int;
  shape_rejected : int;
  memory_rejected : int;
  pruned_abstract : int;
  canonical_rejected : int;
  candidates : int;
  verified : int;
  duplicates : int;
  elapsed_s : float;
}

type t = {
  counters : int Atomic.t array;
  start : float;
}

let n_counters = 8

let create () =
  {
    counters = Array.init n_counters (fun _ -> Atomic.make 0);
    start = Unix.gettimeofday ();
  }

let bump t i = Atomic.incr t.counters.(i)

let bump_expanded t = bump t 0
let bump_shape t = bump t 1
let bump_memory t = bump t 2
let bump_pruned t = bump t 3
let bump_canonical t = bump t 4
let bump_candidates t = bump t 5
let bump_verified t = bump t 6
let bump_duplicates t = bump t 7

let snapshot t =
  let g i = Atomic.get t.counters.(i) in
  {
    expanded = g 0;
    shape_rejected = g 1;
    memory_rejected = g 2;
    pruned_abstract = g 3;
    canonical_rejected = g 4;
    candidates = g 5;
    verified = g 6;
    duplicates = g 7;
    elapsed_s = Unix.gettimeofday () -. t.start;
  }

let to_string s =
  Printf.sprintf
    "expanded=%d shape-=%d mem-=%d pruned=%d canon-=%d candidates=%d \
     verified=%d dup=%d in %.2fs"
    s.expanded s.shape_rejected s.memory_rejected s.pruned_abstract
    s.canonical_rejected s.candidates s.verified s.duplicates s.elapsed_s
