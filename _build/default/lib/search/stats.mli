(** Search statistics: how many prefixes were expanded, and why candidates
    were discarded. Thread-safe; shared across search workers. *)

type snapshot = {
  expanded : int;  (** prefixes popped and extended *)
  shape_rejected : int;
  memory_rejected : int;
  pruned_abstract : int;  (** rejected by the subexpression check *)
  canonical_rejected : int;
  candidates : int;  (** complete muGraphs submitted to verification *)
  verified : int;
  duplicates : int;
  elapsed_s : float;
}

type t

val create : unit -> t
val bump_expanded : t -> unit
val bump_shape : t -> unit
val bump_memory : t -> unit
val bump_pruned : t -> unit
val bump_canonical : t -> unit
val bump_candidates : t -> unit
val bump_verified : t -> unit
val bump_duplicates : t -> unit
val snapshot : t -> snapshot
val to_string : snapshot -> string
