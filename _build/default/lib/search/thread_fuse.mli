(** Rule-based thread-graph construction (paper §4.2, Algorithm 1 lines
    16-23): chains of elementwise block operators whose intermediates
    have a single consumer are replaced by graph-defined block operators
    (thread graphs), keeping the intermediates in register files. *)

val fusable : Mugraph.Op.prim -> bool
(** Elementwise operators allowed at the thread level. *)

val fuse_block : Mugraph.Graph.block_graph -> Mugraph.Graph.block_graph
(** Fixpoint of pairwise fusion. The result computes the same function
    (thread graphs are inlined by the interpreter). *)

val fuse_kernel : Mugraph.Graph.kernel_graph -> Mugraph.Graph.kernel_graph
(** Apply [fuse_block] to every graph-defined kernel operator. *)

val fused_op_count : Mugraph.Graph.kernel_graph -> int
(** Number of operators living inside thread graphs (for reporting). *)
