open Mugraph

let fusable (p : Op.prim) =
  match p with
  | Op.Binary _ | Op.Unary (Op.Exp | Op.Sqr | Op.Sqrt | Op.Silu) -> true
  | _ -> false

(* View a fusable block node as a thread graph over its block inputs. *)
let as_thread_graph (node : Graph.block_node) :
    (Graph.thread_graph * int list) option =
  match node.bop with
  | Graph.B_prim p when fusable p ->
      let n_in = List.length node.bins in
      let tnodes =
        Array.init (n_in + 1) (fun i ->
            if i < n_in then { Graph.top = Graph.T_input i; tins = [] }
            else { Graph.top = Graph.T_prim p; tins = List.init n_in Fun.id })
      in
      Some ({ Graph.tnodes }, node.bins)
  | Graph.B_threadgraph tg -> Some (tg, node.bins)
  | _ -> None

(* Merge producer [a] (block node index ia) into consumer [b]: the result
   is a thread graph over the union of their block inputs. *)
let merge ~ia (tga, bins_a) (tgb, bins_b) : Graph.thread_graph * int list =
  let bins =
    bins_a @ List.filter (fun j -> j <> ia) bins_b
    |> List.sort_uniq Stdlib.compare
  in
  let pos j =
    let rec go k = function
      | [] -> assert false
      | x :: rest -> if x = j then k else go (k + 1) rest
    in
    go 0 bins
  in
  let n_in = List.length bins in
  let input_nodes =
    List.init n_in (fun i -> { Graph.top = Graph.T_input i; tins = [] })
  in
  (* Inline a's computation nodes after the inputs. *)
  let remap_a = Array.make (Array.length tga.Graph.tnodes) 0 in
  let a_nodes = ref [] in
  let next = ref n_in in
  let bins_a_arr = Array.of_list bins_a in
  Array.iteri
    (fun i (tn : Graph.thread_node) ->
      match tn.top with
      | Graph.T_input k -> remap_a.(i) <- pos bins_a_arr.(k)
      | Graph.T_prim p ->
          a_nodes :=
            { Graph.top = Graph.T_prim p;
              tins = List.map (fun j -> remap_a.(j)) tn.tins }
            :: !a_nodes;
          remap_a.(i) <- !next;
          incr next)
    tga.Graph.tnodes;
  let a_output = remap_a.(Array.length tga.Graph.tnodes - 1) in
  (* Inline b's nodes; references to input ia become a's output. *)
  let remap_b = Array.make (Array.length tgb.Graph.tnodes) 0 in
  let b_nodes = ref [] in
  let bins_b_arr = Array.of_list bins_b in
  Array.iteri
    (fun i (tn : Graph.thread_node) ->
      match tn.top with
      | Graph.T_input k ->
          remap_b.(i) <-
            (if bins_b_arr.(k) = ia then a_output else pos bins_b_arr.(k))
      | Graph.T_prim p ->
          b_nodes :=
            { Graph.top = Graph.T_prim p;
              tins = List.map (fun j -> remap_b.(j)) tn.tins }
            :: !b_nodes;
          remap_b.(i) <- !next;
          incr next)
    tgb.Graph.tnodes;
  let tnodes =
    Array.of_list (input_nodes @ List.rev !a_nodes @ List.rev !b_nodes)
  in
  ({ Graph.tnodes }, bins)

let consumers_of (bg : Graph.block_graph) =
  let n = Array.length bg.bnodes in
  let cons = Array.make n [] in
  Array.iteri
    (fun i (node : Graph.block_node) ->
      List.iter (fun j -> cons.(j) <- i :: cons.(j)) node.bins)
    bg.bnodes;
  cons

(* One fusion step: find a fusable producer with a single fusable
   consumer; merge and remove the producer. *)
let fuse_once (bg : Graph.block_graph) : Graph.block_graph option =
  let cons = consumers_of bg in
  let n = Array.length bg.bnodes in
  let found = ref None in
  let i = ref 0 in
  while !found = None && !i < n do
    let ia = !i in
    (match as_thread_graph bg.bnodes.(ia) with
    | Some a_view -> (
        match cons.(ia) with
        | [ ib ] -> (
            match as_thread_graph bg.bnodes.(ib) with
            | Some b_view -> found := Some (ia, ib, a_view, b_view)
            | None -> ())
        | _ -> ())
    | None -> ());
    incr i
  done;
  match !found with
  | None -> None
  | Some (ia, ib, a_view, b_view) ->
      let tg, bins = merge ~ia a_view b_view in
      (* Rebuild without node ia; indices above ia shift down. *)
      let shift j = if j > ia then j - 1 else j in
      let bnodes =
        Array.of_list
          (Array.to_list bg.bnodes
          |> List.mapi (fun i node -> (i, node))
          |> List.filter_map (fun (i, (node : Graph.block_node)) ->
                 if i = ia then None
                 else if i = ib then
                   Some
                     { Graph.bop = Graph.B_threadgraph tg;
                       bins = List.map shift bins }
                 else
                   Some { node with Graph.bins = List.map shift node.bins }))
      in
      Some { bg with Graph.bnodes = bnodes }

let rec fuse_block bg =
  match fuse_once bg with None -> bg | Some bg' -> fuse_block bg'

let fuse_kernel (g : Graph.kernel_graph) =
  {
    g with
    Graph.knodes =
      Array.map
        (fun (node : Graph.kernel_node) ->
          match node.kop with
          | Graph.K_graphdef bg ->
              { node with Graph.kop = Graph.K_graphdef (fuse_block bg) }
          | Graph.K_input _ | Graph.K_prim _ -> node)
        g.knodes;
  }

let fused_op_count (g : Graph.kernel_graph) =
  Array.fold_left
    (fun acc (node : Graph.kernel_node) ->
      match node.kop with
      | Graph.K_graphdef bg ->
          Array.fold_left
            (fun acc (bn : Graph.block_node) ->
              match bn.bop with
              | Graph.B_threadgraph tg ->
                  acc
                  + Array.fold_left
                      (fun acc (tn : Graph.thread_node) ->
                        match tn.top with
                        | Graph.T_prim _ -> acc + 1
                        | Graph.T_input _ -> acc)
                      0 tg.Graph.tnodes
              | _ -> acc)
            acc bg.Graph.bnodes
      | Graph.K_input _ | Graph.K_prim _ -> acc)
    0 g.knodes
