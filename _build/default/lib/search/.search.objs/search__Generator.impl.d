lib/search/generator.ml: Abstract Array Atomic Block_enum Config Domain Float Gpusim Graph Hashtbl Kernel_enum List Memory Mugraph Mutex Smtlite Stats Thread_fuse Unix Verify
