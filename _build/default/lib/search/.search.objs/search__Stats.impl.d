lib/search/stats.ml: Array Atomic Printf Unix
