lib/search/stats.mli:
