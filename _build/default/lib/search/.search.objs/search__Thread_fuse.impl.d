lib/search/thread_fuse.ml: Array Fun Graph List Mugraph Op Stdlib
