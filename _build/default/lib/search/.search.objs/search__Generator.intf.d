lib/search/generator.mli: Config Gpusim Graph Mugraph Smtlite Stats
