lib/search/kernel_enum.mli: Config Graph Memory Mugraph Smtlite Stats
