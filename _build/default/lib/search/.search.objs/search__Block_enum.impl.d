lib/search/block_enum.ml: Absexpr Abstract Array Canon Config Dmap Fun Graph Infer List Memory Mugraph Op Shape Smtlite Stats Tensor Unix
