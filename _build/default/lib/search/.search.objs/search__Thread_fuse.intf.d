lib/search/thread_fuse.mli: Mugraph
