lib/search/kernel_enum.ml: Absexpr Abstract Array Block_enum Canon Config Graph Infer List Memory Mugraph Op Shape Smtlite Stats Tensor Unix
