lib/search/config.mli: Mugraph
