lib/search/config.ml: Absexpr Abstract Array Graph List Mugraph Op Stdlib
