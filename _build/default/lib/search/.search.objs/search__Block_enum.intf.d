lib/search/block_enum.mli: Config Dmap Graph Memory Mugraph Shape Smtlite Stats Tensor
