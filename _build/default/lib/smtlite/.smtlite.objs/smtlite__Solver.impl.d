lib/smtlite/solver.ml: Absexpr Atomic Domain Hashtbl List Mutex
