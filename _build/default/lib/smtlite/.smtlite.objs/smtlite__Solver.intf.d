lib/smtlite/solver.mli: Absexpr
