type t = {
  name : string;
  num_sms : int;
  smem_per_sm_bytes : int;
  dmem_bytes : int;
  l2_bytes : int;
  dram_gb_s : float;
  smem_gb_s_per_sm : float;
  tensor_tflops : float;
  ew_tflops : float;
  kernel_launch_us : float;
  elt_bytes : int;
}

let a100 =
  {
    name = "A100";
    num_sms = 108;
    smem_per_sm_bytes = 164 * 1024;
    dmem_bytes = 40 * 1024 * 1024 * 1024;
    l2_bytes = 40 * 1024 * 1024;
    dram_gb_s = 1555.0;
    smem_gb_s_per_sm = 180.0;
    tensor_tflops = 312.0;
    ew_tflops = 19.5;
    kernel_launch_us = 4.0;
    elt_bytes = 2;
  }

let h100 =
  {
    name = "H100";
    num_sms = 132;
    smem_per_sm_bytes = 228 * 1024;
    dmem_bytes = 40 * 1024 * 1024 * 1024;
    l2_bytes = 50 * 1024 * 1024;
    dram_gb_s = 3350.0;
    smem_gb_s_per_sm = 250.0;
    tensor_tflops = 989.0;
    ew_tflops = 66.9;
    kernel_launch_us = 4.0;
    elt_bytes = 2;
  }

let all = [ a100; h100 ]

let limits d =
  {
    Mugraph.Memory.smem_bytes_per_block = d.smem_per_sm_bytes;
    dmem_bytes = d.dmem_bytes;
    elt_bytes = d.elt_bytes;
  }

let by_name n =
  List.find_opt (fun d -> String.lowercase_ascii d.name = String.lowercase_ascii n) all

let pp fmt d =
  Format.fprintf fmt "%s (%d SMs, %.0f GB/s, %.0f TFLOPS fp16)" d.name
    d.num_sms d.dram_gb_s d.tensor_tflops
