(** GPU device models for the analytical cost simulator.

    This is the reproduction's substitute for running on real A100/H100
    GPUs (DESIGN.md §2): the published first-order parameters of each
    device — SM count, memory bandwidths, peak throughputs, kernel-launch
    latency — drive a roofline-style kernel cost model in {!Cost}. The
    absolute times are approximations; the comparisons between execution
    plans (fused vs unfused, few blocks vs many) are what the benchmarks
    rely on. *)

type t = {
  name : string;
  num_sms : int;
  smem_per_sm_bytes : int;  (** usable shared memory per thread block *)
  dmem_bytes : int;  (** device memory capacity *)
  l2_bytes : int;  (** last-level cache (absorbs replicated tile reads) *)
  dram_gb_s : float;  (** device-memory bandwidth, GB/s *)
  smem_gb_s_per_sm : float;  (** shared-memory bandwidth per SM, GB/s *)
  tensor_tflops : float;  (** fp16 tensor-core peak, TFLOPS *)
  ew_tflops : float;  (** elementwise/special-function peak, TFLOPS *)
  kernel_launch_us : float;  (** per-kernel launch + sync overhead *)
  elt_bytes : int;  (** bytes per element (fp16 = 2, as in §8.2) *)
}

val a100 : t
(** NVIDIA A100-40GB: 108 SMs, 164 KiB smem/SM, 1555 GB/s HBM2e,
    312 TFLOPS fp16. *)

val h100 : t
(** NVIDIA H100: 132 SMs, 228 KiB smem/SM, 3350 GB/s HBM3,
    989 TFLOPS fp16. *)

val all : t list

val limits : t -> Mugraph.Memory.limits
(** Memory limits for the generator's MemoryCheck on this device. *)

val by_name : string -> t option
val pp : Format.formatter -> t -> unit
