lib/gpusim/device.ml: Format List Mugraph String
