lib/gpusim/cost.mli: Device Format Mugraph
