lib/gpusim/device.mli: Format Mugraph
