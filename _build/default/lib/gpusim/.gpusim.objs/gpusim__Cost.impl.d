lib/gpusim/cost.ml: Array Device Float Format Graph Infer List Mugraph Op Shape Tensor
