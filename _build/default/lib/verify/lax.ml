open Mugraph

type verdict = Lax | Not_lax of string

exception Found of string

let prim_exp_delta = function Op.Unary Op.Exp -> 1 | _ -> 0

let check_prim p =
  if not (Op.is_lax p) then
    raise (Found (Printf.sprintf "operator %s is not LAX" (Op.to_string p)))

let max_ints = List.fold_left max 0

let thread_depths (tg : Graph.thread_graph) ~input_depths =
  let input_depths = Array.of_list input_depths in
  let d = Array.make (Array.length tg.tnodes) 0 in
  Array.iteri
    (fun i (node : Graph.thread_node) ->
      d.(i) <-
        (match node.top with
        | Graph.T_input k -> input_depths.(k)
        | Graph.T_prim p ->
            check_prim p;
            max_ints (List.map (fun j -> d.(j)) node.tins)
            + prim_exp_delta p))
    tg.tnodes;
  d.(Array.length d - 1)

let block_output_depths (bg : Graph.block_graph) ~input_depths =
  let input_depths = Array.of_list input_depths in
  let d = Array.make (Array.length bg.bnodes) 0 in
  Array.iteri
    (fun i (node : Graph.block_node) ->
      let ins = List.map (fun j -> d.(j)) node.bins in
      d.(i) <-
        (match node.bop with
        | Graph.B_initer { input; _ } -> input_depths.(input)
        | Graph.B_prim p ->
            check_prim p;
            max_ints ins + prim_exp_delta p
        | Graph.B_accum _ | Graph.B_outsaver _ -> max_ints ins
        | Graph.B_threadgraph tg -> thread_depths tg ~input_depths:ins))
    bg.bnodes;
  Array.to_list bg.bnodes
  |> List.mapi (fun i (n : Graph.block_node) -> (i, n))
  |> List.filter_map (fun (i, (n : Graph.block_node)) ->
         match n.bop with Graph.B_outsaver _ -> Some d.(i) | _ -> None)

let depths (g : Graph.kernel_graph) =
  let d = Array.make (Array.length g.knodes) [||] in
  Array.iteri
    (fun i (node : Graph.kernel_node) ->
      let ins =
        List.map
          (fun ({ node = j; port } : Graph.tensor_ref) -> d.(j).(port))
          node.kins
      in
      d.(i) <-
        (match node.kop with
        | Graph.K_input _ -> [| 0 |]
        | Graph.K_prim p ->
            check_prim p;
            [| max_ints ins + prim_exp_delta p |]
        | Graph.K_graphdef bg ->
            Array.of_list (block_output_depths bg ~input_depths:ins)))
    g.knodes;
  List.map
    (fun ({ node; port } : Graph.tensor_ref) -> d.(node).(port))
    g.outputs

let max_exp_depth g = max_ints (depths g)

let check g =
  match depths g with
  | ds ->
      if max_ints ds <= 1 then Lax
      else
        Not_lax
          (Printf.sprintf
             "a path applies exponentiation %d times (at most 1 allowed)"
             (max_ints ds))
  | exception Found msg -> Not_lax msg

let is_lax g = match check g with Lax -> true | Not_lax _ -> false
