(** The solver-based equivalence verifier sketched in paper §7
    ("Equivalence verification for non-LAX programs").

    Where the probabilistic verifier samples finite fields, this verifier
    evaluates both muGraphs {e symbolically}: every element of every
    input tensor becomes a distinct variable, operators build exact
    rational functions over those variables, and non-multi-linear
    operators (ReLU, SiLU, Sqrt, Exp) become uninterpreted atoms keyed by
    the normal form of their argument. Two programs are declared
    equivalent iff every output element's rational function matches —
    cross-multiplied, so no cancellation assumptions are needed:
    [a/b = c/d  iff  a·d = c·b].

    This is exact (no error probability) and handles arbitrary operators,
    at the price of scaling with tensor sizes and missing identities of
    the interpreted exponential (e.g. [exp x · exp y = exp (x+y)] is not
    recognized — the probabilistic verifier covers those). It is the
    complement the paper describes: "supports more general programs,
    while requiring additional manual effort" — here the manual effort is
    the per-operator symbolic semantics in {!Tensor.Element.ops} form. *)

type poly
(** Multivariate polynomial with integer coefficients over input-element
    variables and uninterpreted atoms. *)

type value = { num : poly; den : poly }
(** A rational function. *)

type result =
  | Equivalent
  | Not_equivalent of string
  | Too_large of string  (** symbolic evaluation size guard tripped *)

val equivalent :
  ?max_elements:int ->
  spec:Mugraph.Graph.kernel_graph ->
  Mugraph.Graph.kernel_graph ->
  result
(** Exact symbolic equivalence. [max_elements] (default 4096) bounds the
    total number of input elements — beyond that, use the probabilistic
    verifier. *)

val to_string : result -> string
