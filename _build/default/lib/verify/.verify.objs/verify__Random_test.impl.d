lib/verify/random_test.ml: Dense Element Ffield Float Graph Hashtbl Infer Interp Lax List Mugraph Random Shape Stdlib Tensor
