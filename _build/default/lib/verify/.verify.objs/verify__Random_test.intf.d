lib/verify/random_test.mli: Mugraph
