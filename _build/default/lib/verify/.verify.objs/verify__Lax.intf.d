lib/verify/lax.mli: Mugraph
