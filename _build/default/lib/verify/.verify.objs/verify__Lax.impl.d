lib/verify/lax.ml: Array Graph List Mugraph Op Printf
