lib/verify/symbolic.ml: Dense Element Graph Interp List Mugraph Printf Shape Stdlib String Tensor
