lib/verify/symbolic.mli: Mugraph
