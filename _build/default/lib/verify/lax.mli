(** The LAX fragment (paper Definition 5.1): a muGraph is LAX when it
    contains only multi-linear operators, division, and exponentiation,
    and every input-to-output path applies at most one exponentiation.

    [Sqrt] and [SiLU] are tolerated: the verifier treats them as opaque
    uninterpreted functions (see {!Random_test}), matching the paper's
    handling of operators outside the core fragment. [ReLU] is rejected. *)

type verdict = Lax | Not_lax of string

val check : Mugraph.Graph.kernel_graph -> verdict
(** Operator whitelist plus the one-exponentiation-per-path condition,
    computed by propagating per-tensor maximum exponentiation counts
    through kernel, block, and thread graphs. *)

val is_lax : Mugraph.Graph.kernel_graph -> bool

val max_exp_depth : Mugraph.Graph.kernel_graph -> int
(** The largest number of exponentiations on any input-output path. *)
