(** Hand-written muGraph templates for library kernels and fused custom
    kernels.

    Baseline systems (paper §8.2) are modelled by the kernel
    decompositions they can express; the fused templates below encode the
    muGraphs Mirage discovers (Figs. 4b, 8b, 9b, 10b and the GQA/nTrans
    case studies) as well as the expert-written kernels of FlashAttention
    / FlashDecoding and the library softmax/normalization kernels that
    PyTorch and TensorRT dispatch to. Every template is a complete
    {!Mugraph.Graph.kernel_graph} so the same cost model and the same
    probabilistic verifier apply to all systems; the test suite checks
    each fused template equivalent to its specification. *)

open Mugraph

(** {1 Normalization} *)

val rmsnorm_matmul_spec : b:int -> h:int -> d:int -> Graph.kernel_graph
(** Z = ((X∘G)/sqrt(Σ_h X²)) × W — the §3 running example. Inputs
    X [b,h], G [1,h], W [h,d]. *)

val rmsnorm_matmul_unfused : b:int -> h:int -> d:int -> Graph.kernel_graph
(** Two kernels: a fused RMSNorm library kernel (one graphdef) writing Y,
    then a Matmul — what PyTorch / TensorRT / Triton execute. *)

val rmsnorm_matmul_fused :
  b:int -> h:int -> d:int -> grid:int -> iters:int -> Graph.kernel_graph
(** Fig. 4b: a single custom kernel; grid partitions [d], the for-loop
    partitions [h]; matmul and square-sum accumulate in parallel and the
    division happens in the epilogue. *)

(** {1 Attention (grouped-query / multi-head)}

    Decode-time attention with KV grouping expressed by shape:
    Q [b,gk,grp,dh], K [b,gk,s,dh], V [b,gk,s,dh]; the batched matmul
    broadcasts over the group dimension. Softmax is the LAX variant
    (exp / Σexp, no max subtraction — paper §5). *)

val attention_spec :
  b:int -> gk:int -> grp:int -> s:int -> dh:int -> Graph.kernel_graph

val attention_unfused :
  b:int -> gk:int -> grp:int -> s:int -> dh:int -> Graph.kernel_graph
(** Matmul, softmax library kernel (one graphdef), matmul. *)

val attention_fused_heads :
  b:int -> gk:int -> grp:int -> s:int -> dh:int -> Graph.kernel_graph
(** FlashAttention/TensorRT-style single kernel: one block per (batch,
    kv-head, group) slice, for-loop over the KV sequence. Grid =
    b·gk·grp blocks. *)

val attention_fused_split_kv :
  b:int ->
  gk:int ->
  grp:int ->
  s:int ->
  dh:int ->
  split:int ->
  group_in_block:bool ->
  Graph.kernel_graph
(** Split-KV attention (FlashDecoding / the Mirage GQA discovery): kernel
    1 computes partial Σexp·V and Σexp per KV chunk (grid includes the
    [split] chunks); kernel 2 combines the partials and divides. With
    [group_in_block] one block serves a whole query group and loads each
    K/V tile once (the up-to-7× traffic saving of §8.2); otherwise each
    query head loads its own copy (the FlashDecoding layout). *)

(** {1 QKNorm + attention (Fig. 8)} *)

val qknorm_attention_spec :
  b:int -> gk:int -> grp:int -> s:int -> dh:int -> Graph.kernel_graph
(** RMS-normalizes Q rows and K rows before attention. *)

val qknorm_attention_unfused :
  b:int -> gk:int -> grp:int -> s:int -> dh:int -> Graph.kernel_graph
(** Two normalization kernels + fused attention (what systems without
    QKNorm-aware kernels do). *)

val qknorm_attention_fused :
  b:int -> gk:int -> grp:int -> s:int -> dh:int -> Graph.kernel_graph
(** Fig. 8b: normalization folded into the attention custom kernel. *)

(** {1 LoRA (Fig. 9)} *)

val lora_spec : m:int -> k:int -> r:int -> n:int -> Graph.kernel_graph
(** O = W×X + B×(A×X); W [m,k], A [r,k], B [m,r], X [k,n]. *)

val lora_unfused : m:int -> k:int -> r:int -> n:int -> Graph.kernel_graph
(** Three matmul kernels + add (PyTorch / TASO / TensorRT). *)

val lora_fused :
  m:int -> k:int -> r:int -> n:int -> grid:int -> iters:int ->
  Graph.kernel_graph
(** Fig. 9b: one custom kernel; the for-loop accumulates W×X and A×X in
    parallel, the epilogue applies the low-rank correction
    B×(AX) + WX — the (W‖B)×(X‖AX) concat trick realized in shared
    memory. *)

(** {1 Gated MLP (Fig. 10)} *)

val gated_mlp_spec : b:int -> h:int -> f:int -> Graph.kernel_graph
(** O = SiLU(X×W1) ∘ (X×W2); X [b,h], W1 W2 [h,f]. *)

val gated_mlp_two_kernel : b:int -> h:int -> f:int -> Graph.kernel_graph
(** The "existing optimizer" plan: both matmuls fused in one kernel
    (X loaded once), SiLU∘Mul in a second elementwise kernel. *)

val gated_mlp_unfused : b:int -> h:int -> f:int -> Graph.kernel_graph
(** Fully unfused: two matmul kernels + one elementwise kernel. *)

val gated_mlp_fused :
  b:int -> h:int -> f:int -> grid:int -> iters:int -> Graph.kernel_graph
(** Fig. 10b: both matmuls in the same block graph accumulating over h;
    SiLU and Mul as the epilogue. *)

(** {1 nTrans (nGPT normalized Transformer)} *)

val ntrans_spec : b:int -> d:int -> Graph.kernel_graph
(** y = Norm(x + α ∘ Norm(h − x)) with Norm(v) = v / sqrt(Σ v²). *)

val ntrans_unfused : b:int -> d:int -> Graph.kernel_graph
(** Three kernels: Norm, scale+add, Norm. *)

val ntrans_fused : b:int -> d:int -> grid:int -> Graph.kernel_graph
(** One custom kernel holding all intermediates in shared memory. *)
