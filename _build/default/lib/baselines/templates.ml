open Mugraph
module B = Graph.Build

(* Block-graph building helpers. *)
let bnode bop bins = { Graph.bop; bins }
let initer input imap fmap = bnode (Graph.B_initer { input; imap; fmap }) []
let prim p bins = bnode (Graph.B_prim p) bins
let accum_phi nloops bins =
  bnode (Graph.B_accum { fmap = Array.make nloops Dmap.Replica }) bins
let outsaver omap bins = bnode (Graph.B_outsaver { omap }) bins
let d0 = Dmap.Dim 0
let d1 = Dmap.Dim 1
let phi = Dmap.Replica

let mul = Op.Binary Op.Mul
let add = Op.Binary Op.Add
let ewdiv = Op.Binary Op.Div
let ewsub = Op.Binary Op.Sub
let sqr = Op.Unary Op.Sqr
let sqrt_ = Op.Unary Op.Sqrt
let silu = Op.Unary Op.Silu
let exp_ = Op.Unary Op.Exp

let sum ~dim ~group = Op.Sum { dim; group }

(* ------------------------------------------------------------------ *)
(* RMSNorm + MatMul (§3, Fig. 4)                                       *)
(* ------------------------------------------------------------------ *)

let rmsnorm_matmul_spec ~b ~h ~d =
  let bld = B.create () in
  let x = B.input bld "X" [| b; h |] in
  let g = B.input bld "G" [| 1; h |] in
  let w = B.input bld "W" [| h; d |] in
  let xg = B.prim bld mul [ x; g ] in
  let sq = B.prim bld sqr [ x ] in
  let ssum = B.prim bld (sum ~dim:1 ~group:h) [ sq ] in
  let rms = B.prim bld sqrt_ [ ssum ] in
  let y = B.prim bld ewdiv [ xg; rms ] in
  let z = B.prim bld Op.Matmul [ y; w ] in
  B.finish bld ~outputs:[ z ]

(* The RMSNorm library kernel: one block per batch row. *)
let rmsnorm_kernel_block ~h : Graph.block_graph =
  {
    Graph.grid = [| 0 (* patched *) |];
    forloop = [||];
    bnodes =
      [|
        initer 0 [| d0 |] [||];
        (* X rows *)
        initer 1 [| phi |] [||];
        (* G *)
        prim mul [ 0; 1 ];
        prim sqr [ 0 ];
        prim (sum ~dim:1 ~group:h) [ 3 ];
        prim sqrt_ [ 4 ];
        prim ewdiv [ 2; 5 ];
        outsaver [| 0 |] [ 6 ];
      |];
  }

let rmsnorm_matmul_unfused ~b ~h ~d =
  let bld = B.create () in
  let x = B.input bld "X" [| b; h |] in
  let g = B.input bld "G" [| 1; h |] in
  let w = B.input bld "W" [| h; d |] in
  let bg = { (rmsnorm_kernel_block ~h) with Graph.grid = [| b |] } in
  let y = List.hd (B.graphdef bld bg [ x; g ] 1) in
  let z = B.prim bld Op.Matmul [ y; w ] in
  B.finish bld ~outputs:[ z ]

let rmsnorm_matmul_fused ~b ~h ~d ~grid ~iters =
  ignore d;
  let chunk = h / iters in
  let bg : Graph.block_graph =
    {
      Graph.grid = [| grid |];
      forloop = [| iters |];
      bnodes =
        [|
          initer 0 [| phi |] [| d1 |];
          (* X tile [b, h/iters] *)
          initer 1 [| phi |] [| d1 |];
          (* G tile *)
          initer 2 [| d1 |] [| d0 |];
          (* W tile [h/iters, d/grid] *)
          prim mul [ 0; 1 ];
          prim Op.Matmul [ 3; 2 ];
          accum_phi 1 [ 4 ];
          prim sqr [ 0 ];
          prim (sum ~dim:1 ~group:chunk) [ 6 ];
          accum_phi 1 [ 7 ];
          prim sqrt_ [ 8 ];
          prim ewdiv [ 5; 9 ];
          outsaver [| 1 |] [ 10 ];
        |];
    }
  in
  let bld = B.create () in
  let x = B.input bld "X" [| b; h |] in
  let g = B.input bld "G" [| 1; h |] in
  let w = B.input bld "W" [| h; d |] in
  let outs = B.graphdef bld bg [ x; g; w ] 1 in
  B.finish bld ~outputs:outs

(* ------------------------------------------------------------------ *)
(* Attention                                                            *)
(* ------------------------------------------------------------------ *)

(* All attention templates work on the reshaped 3-d views
   Q' [G, grp, dh], K' V' [G, s, dh] with G = b*gk; reshapes are free
   metadata at the kernel level. *)

let attention_inputs bld ~b ~gk ~grp ~s ~dh =
  let q = B.input bld "Q" [| b; gk; grp; dh |] in
  let k = B.input bld "K" [| b; gk; s; dh |] in
  let v = B.input bld "V" [| b; gk; s; dh |] in
  let g = b * gk in
  let q' = B.prim bld (Op.Reshape [| g; grp; dh |]) [ q ] in
  let k' = B.prim bld (Op.Reshape [| g; s; dh |]) [ k ] in
  let v' = B.prim bld (Op.Reshape [| g; s; dh |]) [ v ] in
  (q', k', v')

let attention_spec ~b ~gk ~grp ~s ~dh =
  let bld = B.create () in
  let q = B.input bld "Q" [| b; gk; grp; dh |] in
  let k = B.input bld "K" [| b; gk; s; dh |] in
  let v = B.input bld "V" [| b; gk; s; dh |] in
  let kt = B.prim bld Op.Transpose [ k ] in
  let sc = B.prim bld Op.Matmul [ q; kt ] in
  let e = B.prim bld exp_ [ sc ] in
  let l = B.prim bld (sum ~dim:3 ~group:s) [ e ] in
  let a = B.prim bld Op.Matmul [ e; v ] in
  let o = B.prim bld ewdiv [ a; l ] in
  B.finish bld ~outputs:[ o ]

(* softmax along the last dim of [G, grp, s]: the library kernel. *)
let softmax_block ~g ~grp ~s : Graph.block_graph =
  ignore g;
  ignore grp;
  {
    Graph.grid = [| g; grp |];
    forloop = [||];
    bnodes =
      [|
        initer 0 [| d0; d1 |] [||];
        prim exp_ [ 0 ];
        prim (sum ~dim:2 ~group:s) [ 1 ];
        prim ewdiv [ 1; 2 ];
        outsaver [| 0; 1 |] [ 3 ];
      |];
  }

let attention_unfused ~b ~gk ~grp ~s ~dh =
  let bld = B.create () in
  let q', k', v' = attention_inputs bld ~b ~gk ~grp ~s ~dh in
  let g = b * gk in
  let kt = B.prim bld Op.Transpose [ k' ] in
  let sc = B.prim bld Op.Matmul [ q'; kt ] in
  let soft =
    List.hd (B.graphdef bld (softmax_block ~g ~grp ~s) [ sc ] 1)
  in
  let a = B.prim bld Op.Matmul [ soft; v' ] in
  let o = B.prim bld (Op.Reshape [| b; gk; grp; dh |]) [ a ] in
  B.finish bld ~outputs:[ o ]

let kv_chunk_iters ~rows = max 1 (rows / 64)

(* FlashAttention-style: one block per (G, grp) query row, loop over KV. *)
let attention_fused_heads ~b ~gk ~grp ~s ~dh =
  let bld = B.create () in
  let q', k', v' = attention_inputs bld ~b ~gk ~grp ~s ~dh in
  let g = b * gk in
  let iters = kv_chunk_iters ~rows:s in
  let bg : Graph.block_graph =
    {
      Graph.grid = [| g; grp |];
      forloop = [| iters |];
      bnodes =
        [|
          initer 0 [| d0; d1 |] [| phi |];
          (* q row [1,1,dh] *)
          initer 1 [| d0; phi |] [| d1 |];
          (* K chunk [1,s/iters,dh] *)
          initer 2 [| d0; phi |] [| d1 |];
          (* V chunk *)
          prim Op.Transpose [ 1 ];
          prim Op.Matmul [ 0; 3 ];
          (* scores [1,1,chunk] *)
          prim exp_ [ 4 ];
          prim (sum ~dim:2 ~group:(s / iters)) [ 5 ];
          prim Op.Matmul [ 5; 2 ];
          (* partial numerator [1,1,dh] *)
          accum_phi 1 [ 6 ];
          accum_phi 1 [ 7 ];
          prim ewdiv [ 9; 8 ];
          outsaver [| 0; 1 |] [ 10 ];
        |];
    }
  in
  let a = List.hd (B.graphdef bld bg [ q'; k'; v' ] 1) in
  let o = B.prim bld (Op.Reshape [| b; gk; grp; dh |]) [ a ] in
  B.finish bld ~outputs:[ o ]

let attention_fused_split_kv ~b ~gk ~grp ~s ~dh ~split ~group_in_block =
  let bld = B.create () in
  let q', k', v' = attention_inputs bld ~b ~gk ~grp ~s ~dh in
  let g = b * gk in
  let rows = s / split in
  let iters = kv_chunk_iters ~rows in
  let chunk = rows / iters in
  if group_in_block then begin
    (* Mirage's GQA discovery: block = (kv head, kv chunk); the whole
       query group rides along, so each K/V tile is loaded once. *)
    let bg : Graph.block_graph =
      {
        Graph.grid = [| g; split |];
        forloop = [| iters |];
        bnodes =
          [|
            initer 0 [| d0; phi |] [| phi |];
            (* Q group [1,grp,dh] *)
            initer 1 [| d0; d1 |] [| d1 |];
            (* K chunk [1,chunk,dh] *)
            initer 2 [| d0; d1 |] [| d1 |];
            prim Op.Transpose [ 1 ];
            prim Op.Matmul [ 0; 3 ];
            (* [1,grp,chunk] *)
            prim exp_ [ 4 ];
            prim (sum ~dim:2 ~group:chunk) [ 5 ];
            (* [1,grp,1] *)
            prim Op.Matmul [ 5; 2 ];
            (* [1,grp,dh] *)
            accum_phi 1 [ 6 ];
            accum_phi 1 [ 7 ];
            prim (Op.Reshape [| 1; 1; grp; 1 |]) [ 8 ];
            prim (Op.Reshape [| 1; 1; grp; dh |]) [ 9 ];
            outsaver [| 0; 1 |] [ 11 ];
            (* A parts [G,split,grp,dh] *)
            outsaver [| 0; 1 |] [ 10 ];
            (* L parts [G,split,grp,1] *)
          |];
      }
    in
    match B.graphdef bld bg [ q'; k'; v' ] 2 with
    | [ a_parts; l_parts ] ->
        (* combine kernel: sums the partials over the split dim and
           divides, one block per kv head *)
        let combine : Graph.block_graph =
          {
            Graph.grid = [| g; grp |];
            forloop = [||];
            bnodes =
              [|
                initer 0 [| d0; Dmap.Dim 2 |] [||];
                (* A parts tile [1,split,1,dh] *)
                initer 1 [| d0; Dmap.Dim 2 |] [||];
                prim (sum ~dim:1 ~group:split) [ 0 ];
                prim (sum ~dim:1 ~group:split) [ 1 ];
                prim ewdiv [ 2; 3 ];
                outsaver [| 0; 2 |] [ 4 ];
              |];
          }
        in
        let dv =
          List.hd (B.graphdef bld combine [ a_parts; l_parts ] 1)
        in
        let o = B.prim bld (Op.Reshape [| b; gk; grp; dh |]) [ dv ] in
        B.finish bld ~outputs:[ o ]
    | _ -> assert false
  end
  else begin
    (* FlashDecoding layout: one block per (kv head, query head, kv
       chunk); each query head loads its own K/V copy. *)
    let bg : Graph.block_graph =
      {
        Graph.grid = [| g; grp; split |];
        forloop = [| iters |];
        bnodes =
          [|
            initer 0 [| d0; d1; phi |] [| phi |];
            (* q row [1,1,dh] *)
            initer 1 [| d0; phi; d1 |] [| d1 |];
            (* K chunk *)
            initer 2 [| d0; phi; d1 |] [| d1 |];
            prim Op.Transpose [ 1 ];
            prim Op.Matmul [ 0; 3 ];
            prim exp_ [ 4 ];
            prim (sum ~dim:2 ~group:chunk) [ 5 ];
            prim Op.Matmul [ 5; 2 ];
            accum_phi 1 [ 6 ];
            accum_phi 1 [ 7 ];
            prim (Op.Reshape [| 1; 1; 1; 1 |]) [ 8 ];
            prim (Op.Reshape [| 1; 1; 1; dh |]) [ 9 ];
            outsaver [| 0; 1; 2 |] [ 11 ];
            (* A parts [G,grp,split,dh] *)
            outsaver [| 0; 1; 2 |] [ 10 ];
            (* L parts [G,grp,split,1] *)
          |];
      }
    in
    match B.graphdef bld bg [ q'; k'; v' ] 2 with
    | [ a_parts; l_parts ] ->
        let combine : Graph.block_graph =
          {
            Graph.grid = [| g; grp |];
            forloop = [||];
            bnodes =
              [|
                initer 0 [| d0; d1 |] [||];
                (* A parts [1,1,split,dh] *)
                initer 1 [| d0; d1 |] [||];
                prim (sum ~dim:2 ~group:split) [ 0 ];
                prim (sum ~dim:2 ~group:split) [ 1 ];
                prim ewdiv [ 2; 3 ];
                outsaver [| 0; 1 |] [ 4 ];
              |];
          }
        in
        let dv =
          List.hd (B.graphdef bld combine [ a_parts; l_parts ] 1)
        in
        let o = B.prim bld (Op.Reshape [| b; gk; grp; dh |]) [ dv ] in
        B.finish bld ~outputs:[ o ]
    | _ -> assert false
  end

(* ------------------------------------------------------------------ *)
(* QKNorm + attention (Fig. 8)                                          *)
(* ------------------------------------------------------------------ *)

let qknorm_attention_spec ~b ~gk ~grp ~s ~dh =
  let bld = B.create () in
  let q = B.input bld "Q" [| b; gk; grp; dh |] in
  let k = B.input bld "K" [| b; gk; s; dh |] in
  let v = B.input bld "V" [| b; gk; s; dh |] in
  let norm t ~dim ~n =
    let sq = B.prim bld sqr [ t ] in
    let ssum = B.prim bld (sum ~dim ~group:n) [ sq ] in
    let rms = B.prim bld sqrt_ [ ssum ] in
    B.prim bld ewdiv [ t; rms ]
  in
  let qn = norm q ~dim:3 ~n:dh in
  let kn = norm k ~dim:3 ~n:dh in
  let kt = B.prim bld Op.Transpose [ kn ] in
  let sc = B.prim bld Op.Matmul [ qn; kt ] in
  let e = B.prim bld exp_ [ sc ] in
  let l = B.prim bld (sum ~dim:3 ~group:s) [ e ] in
  let a = B.prim bld Op.Matmul [ e; v ] in
  let o = B.prim bld ewdiv [ a; l ] in
  B.finish bld ~outputs:[ o ]

(* normalize rows of [G, rows, dh] along dh, blocks over (G, row chunks) *)
let rownorm_block ~row_chunks ~dh : Graph.block_graph =
  {
    Graph.grid = [| 0 (* patched: G *); row_chunks |];
    forloop = [||];
    bnodes =
      [|
        initer 0 [| d0; d1 |] [||];
        prim sqr [ 0 ];
        prim (sum ~dim:2 ~group:dh) [ 1 ];
        prim sqrt_ [ 2 ];
        prim ewdiv [ 0; 3 ];
        outsaver [| 0; 1 |] [ 4 ];
      |];
  }

let qknorm_attention_unfused ~b ~gk ~grp ~s ~dh =
  let bld = B.create () in
  let q', k', v' = attention_inputs bld ~b ~gk ~grp ~s ~dh in
  let g = b * gk in
  let qbg = { (rownorm_block ~row_chunks:1 ~dh) with Graph.grid = [| g; 1 |] } in
  let qn = List.hd (B.graphdef bld qbg [ q' ] 1) in
  let kchunks = max 1 (s / 128) in
  let kbg =
    { (rownorm_block ~row_chunks:kchunks ~dh) with Graph.grid = [| g; kchunks |] }
  in
  let kn = List.hd (B.graphdef bld kbg [ k' ] 1) in
  (* then the best available attention kernel *)
  let iters = kv_chunk_iters ~rows:s in
  let bg : Graph.block_graph =
    {
      Graph.grid = [| g; grp |];
      forloop = [| iters |];
      bnodes =
        [|
          initer 0 [| d0; d1 |] [| phi |];
          initer 1 [| d0; phi |] [| d1 |];
          initer 2 [| d0; phi |] [| d1 |];
          prim Op.Transpose [ 1 ];
          prim Op.Matmul [ 0; 3 ];
          prim exp_ [ 4 ];
          prim (sum ~dim:2 ~group:(s / iters)) [ 5 ];
          prim Op.Matmul [ 5; 2 ];
          accum_phi 1 [ 6 ];
          accum_phi 1 [ 7 ];
          prim ewdiv [ 9; 8 ];
          outsaver [| 0; 1 |] [ 10 ];
        |];
    }
  in
  let a = List.hd (B.graphdef bld bg [ qn; kn; v' ] 1) in
  let o = B.prim bld (Op.Reshape [| b; gk; grp; dh |]) [ a ] in
  B.finish bld ~outputs:[ o ]

let qknorm_attention_fused ~b ~gk ~grp ~s ~dh =
  let bld = B.create () in
  let q', k', v' = attention_inputs bld ~b ~gk ~grp ~s ~dh in
  let g = b * gk in
  let iters = kv_chunk_iters ~rows:s in
  let chunk = s / iters in
  let bg : Graph.block_graph =
    {
      Graph.grid = [| g; grp |];
      forloop = [| iters |];
      bnodes =
        [|
          (* 0-2: tiles *)
          initer 0 [| d0; d1 |] [| phi |];
          (* q row, loop-invariant *)
          initer 1 [| d0; phi |] [| d1 |];
          initer 2 [| d0; phi |] [| d1 |];
          (* 3-6: normalize q in-block (invariant) *)
          prim sqr [ 0 ];
          prim (sum ~dim:2 ~group:dh) [ 3 ];
          prim sqrt_ [ 4 ];
          prim ewdiv [ 0; 5 ];
          (* 7-10: normalize the K chunk each iteration *)
          prim sqr [ 1 ];
          prim (sum ~dim:2 ~group:dh) [ 7 ];
          prim sqrt_ [ 8 ];
          prim ewdiv [ 1; 9 ];
          (* 11-15: attention math on normalized tiles *)
          prim Op.Transpose [ 10 ];
          prim Op.Matmul [ 6; 11 ];
          prim exp_ [ 12 ];
          prim (sum ~dim:2 ~group:chunk) [ 13 ];
          prim Op.Matmul [ 13; 2 ];
          (* 16-18: accumulate and divide *)
          accum_phi 1 [ 14 ];
          accum_phi 1 [ 15 ];
          prim ewdiv [ 17; 16 ];
          outsaver [| 0; 1 |] [ 18 ];
        |];
    }
  in
  let a = List.hd (B.graphdef bld bg [ q'; k'; v' ] 1) in
  let o = B.prim bld (Op.Reshape [| b; gk; grp; dh |]) [ a ] in
  B.finish bld ~outputs:[ o ]

(* ------------------------------------------------------------------ *)
(* LoRA (Fig. 9)                                                        *)
(* ------------------------------------------------------------------ *)

let lora_spec ~m ~k ~r ~n =
  let bld = B.create () in
  let w = B.input bld "W" [| m; k |] in
  let a = B.input bld "A" [| r; k |] in
  let bb = B.input bld "Bm" [| m; r |] in
  let x = B.input bld "X" [| k; n |] in
  let ax = B.prim bld Op.Matmul [ a; x ] in
  let bax = B.prim bld Op.Matmul [ bb; ax ] in
  let wx = B.prim bld Op.Matmul [ w; x ] in
  let o = B.prim bld add [ wx; bax ] in
  B.finish bld ~outputs:[ o ]

let lora_unfused = lora_spec

let lora_fused ~m ~k ~r ~n ~grid ~iters =
  let bld = B.create () in
  let w = B.input bld "W" [| m; k |] in
  let a = B.input bld "A" [| r; k |] in
  let bb = B.input bld "Bm" [| m; r |] in
  let x = B.input bld "X" [| k; n |] in
  let bg : Graph.block_graph =
    {
      Graph.grid = [| grid |];
      forloop = [| iters |];
      bnodes =
        [|
          initer 0 [| d0 |] [| d1 |];
          (* W tile [m/grid, k/iters] *)
          initer 1 [| phi |] [| d1 |];
          (* A tile [r, k/iters] *)
          initer 2 [| d0 |] [| phi |];
          (* B tile [m/grid, r], invariant *)
          initer 3 [| phi |] [| d0 |];
          (* X tile [k/iters, n] *)
          prim Op.Matmul [ 0; 3 ];
          (* WX partial *)
          prim Op.Matmul [ 1; 3 ];
          (* AX partial *)
          accum_phi 1 [ 4 ];
          accum_phi 1 [ 5 ];
          (* epilogue: the low-rank correction, i.e. (W‖B)x(X‖AX) *)
          prim Op.Matmul [ 2; 7 ];
          prim add [ 6; 8 ];
          outsaver [| 0 |] [ 9 ];
        |];
    }
  in
  let outs = B.graphdef bld bg [ w; a; bb; x ] 1 in
  ignore (m, k, r, n);
  B.finish bld ~outputs:outs

(* ------------------------------------------------------------------ *)
(* Gated MLP (Fig. 10)                                                  *)
(* ------------------------------------------------------------------ *)

let gated_mlp_spec ~b ~h ~f =
  let bld = B.create () in
  let x = B.input bld "X" [| b; h |] in
  let w1 = B.input bld "W1" [| h; f |] in
  let w2 = B.input bld "W2" [| h; f |] in
  let m1 = B.prim bld Op.Matmul [ x; w1 ] in
  let s1 = B.prim bld silu [ m1 ] in
  let m2 = B.prim bld Op.Matmul [ x; w2 ] in
  let o = B.prim bld mul [ s1; m2 ] in
  B.finish bld ~outputs:[ o ]

let gated_mlp_matmul_pair ~b ~h ~f ~grid ~iters : Graph.block_graph =
  ignore (b, h, f);
  {
    Graph.grid = [| grid |];
    forloop = [| iters |];
    bnodes =
      [|
        initer 0 [| phi |] [| d1 |];
        (* X tile [b, h/iters] *)
        initer 1 [| d1 |] [| d0 |];
        (* W1 tile [h/iters, f/grid] *)
        initer 2 [| d1 |] [| d0 |];
        prim Op.Matmul [ 0; 1 ];
        prim Op.Matmul [ 0; 2 ];
        accum_phi 1 [ 3 ];
        accum_phi 1 [ 4 ];
        outsaver [| 1 |] [ 5 ];
        outsaver [| 1 |] [ 6 ];
      |];
  }

let gated_mlp_two_kernel ~b ~h ~f =
  let bld = B.create () in
  let x = B.input bld "X" [| b; h |] in
  let w1 = B.input bld "W1" [| h; f |] in
  let w2 = B.input bld "W2" [| h; f |] in
  let grid = min 128 f and iters = max 1 (h / 64) in
  let bg = gated_mlp_matmul_pair ~b ~h ~f ~grid ~iters in
  match B.graphdef bld bg [ x; w1; w2 ] 2 with
  | [ m1; m2 ] ->
      (* elementwise epilogue kernel: silu(m1) * m2 in one block graph *)
      let ew : Graph.block_graph =
        {
          Graph.grid = [| min 128 f |];
          forloop = [||];
          bnodes =
            [|
              initer 0 [| d1 |] [||];
              initer 1 [| d1 |] [||];
              prim silu [ 0 ];
              prim mul [ 2; 1 ];
              outsaver [| 1 |] [ 3 ];
            |];
        }
      in
      let o = List.hd (B.graphdef bld ew [ m1; m2 ] 1) in
      B.finish bld ~outputs:[ o ]
  | _ -> assert false

let gated_mlp_unfused = gated_mlp_spec

let gated_mlp_fused ~b ~h ~f ~grid ~iters =
  let bld = B.create () in
  let x = B.input bld "X" [| b; h |] in
  let w1 = B.input bld "W1" [| h; f |] in
  let w2 = B.input bld "W2" [| h; f |] in
  let bg : Graph.block_graph =
    {
      Graph.grid = [| grid |];
      forloop = [| iters |];
      bnodes =
        [|
          initer 0 [| phi |] [| d1 |];
          initer 1 [| d1 |] [| d0 |];
          initer 2 [| d1 |] [| d0 |];
          prim Op.Matmul [ 0; 1 ];
          prim Op.Matmul [ 0; 2 ];
          accum_phi 1 [ 3 ];
          accum_phi 1 [ 4 ];
          prim silu [ 5 ];
          prim mul [ 7; 6 ];
          outsaver [| 1 |] [ 8 ];
        |];
    }
  in
  let outs = B.graphdef bld bg [ x; w1; w2 ] 1 in
  B.finish bld ~outputs:outs

(* ------------------------------------------------------------------ *)
(* nTrans (nGPT)                                                        *)
(* ------------------------------------------------------------------ *)

let ntrans_spec ~b ~d =
  let bld = B.create () in
  let x = B.input bld "Xt" [| b; d |] in
  let h = B.input bld "H" [| b; d |] in
  let alpha = B.input bld "Alpha" [| 1; d |] in
  let norm t =
    let sq = B.prim bld sqr [ t ] in
    let ssum = B.prim bld (sum ~dim:1 ~group:d) [ sq ] in
    let rms = B.prim bld sqrt_ [ ssum ] in
    B.prim bld ewdiv [ t; rms ]
  in
  let t = B.prim bld ewsub [ h; x ] in
  let tn = norm t in
  let sc = B.prim bld mul [ alpha; tn ] in
  let u = B.prim bld add [ x; sc ] in
  let y = norm u in
  B.finish bld ~outputs:[ y ]

let ntrans_norm_block ~d ~grid : Graph.block_graph =
  {
    Graph.grid = [| grid |];
    forloop = [||];
    bnodes =
      [|
        initer 0 [| d0 |] [||];
        prim sqr [ 0 ];
        prim (sum ~dim:1 ~group:d) [ 1 ];
        prim sqrt_ [ 2 ];
        prim ewdiv [ 0; 3 ];
        outsaver [| 0 |] [ 4 ];
      |];
  }

let ntrans_unfused ~b ~d =
  let bld = B.create () in
  let x = B.input bld "Xt" [| b; d |] in
  let h = B.input bld "H" [| b; d |] in
  let alpha = B.input bld "Alpha" [| 1; d |] in
  (* kernel 1: t = h - x, normalized *)
  let k1 : Graph.block_graph =
    {
      Graph.grid = [| b |];
      forloop = [||];
      bnodes =
        [|
          initer 0 [| d0 |] [||];
          initer 1 [| d0 |] [||];
          prim ewsub [ 1; 0 ];
          prim sqr [ 2 ];
          prim (sum ~dim:1 ~group:d) [ 3 ];
          prim sqrt_ [ 4 ];
          prim ewdiv [ 2; 5 ];
          outsaver [| 0 |] [ 6 ];
        |];
    }
  in
  let tn = List.hd (B.graphdef bld k1 [ x; h ] 1) in
  (* kernel 2: u = x + alpha * tn (elementwise) *)
  let k2 : Graph.block_graph =
    {
      Graph.grid = [| b |];
      forloop = [||];
      bnodes =
        [|
          initer 0 [| d0 |] [||];
          initer 1 [| d0 |] [||];
          initer 2 [| phi |] [||];
          prim mul [ 2; 1 ];
          prim add [ 0; 3 ];
          outsaver [| 0 |] [ 4 ];
        |];
    }
  in
  let u = List.hd (B.graphdef bld k2 [ x; tn; alpha ] 1) in
  (* kernel 3: final norm *)
  let y = List.hd (B.graphdef bld (ntrans_norm_block ~d ~grid:b) [ u ] 1) in
  B.finish bld ~outputs:[ y ]

let ntrans_fused ~b ~d ~grid =
  let bld = B.create () in
  let x = B.input bld "Xt" [| b; d |] in
  let h = B.input bld "H" [| b; d |] in
  let alpha = B.input bld "Alpha" [| 1; d |] in
  let bg : Graph.block_graph =
    {
      Graph.grid = [| grid |];
      forloop = [||];
      bnodes =
        [|
          initer 0 [| d0 |] [||];
          initer 1 [| d0 |] [||];
          initer 2 [| phi |] [||];
          prim ewsub [ 1; 0 ];
          prim sqr [ 3 ];
          prim (sum ~dim:1 ~group:d) [ 4 ];
          prim sqrt_ [ 5 ];
          prim ewdiv [ 3; 6 ];
          prim mul [ 2; 7 ];
          prim add [ 0; 8 ];
          prim sqr [ 9 ];
          prim (sum ~dim:1 ~group:d) [ 10 ];
          prim sqrt_ [ 11 ];
          prim ewdiv [ 9; 12 ];
          outsaver [| 0 |] [ 13 ];
        |];
    }
  in
  let outs = B.graphdef bld bg [ x; h; alpha ] 1 in
  B.finish bld ~outputs:outs
