lib/baselines/templates.mli: Graph Mugraph
