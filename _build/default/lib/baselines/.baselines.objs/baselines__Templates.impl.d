lib/baselines/templates.ml: Array Dmap Graph List Mugraph Op
