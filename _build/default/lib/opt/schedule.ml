open Mugraph

type t = {
  order : int list;
  depths : int array;
  syncthreads : int;
  naive_syncthreads : int;
}

let is_compute (n : Graph.block_node) =
  match n.bop with
  | Graph.B_prim _ | Graph.B_threadgraph _ | Graph.B_accum _ -> true
  | Graph.B_initer _ | Graph.B_outsaver _ -> false

let block_schedule (bg : Graph.block_graph) =
  let n = Array.length bg.bnodes in
  let depths = Array.make n 0 in
  Array.iteri
    (fun i (node : Graph.block_node) ->
      let input_depth =
        List.fold_left (fun acc j -> max acc depths.(j)) 0 node.bins
      in
      depths.(i) <-
        (match node.bop with
        | Graph.B_initer _ -> 0
        | Graph.B_outsaver _ -> input_depth
        | Graph.B_prim _ | Graph.B_threadgraph _ | Graph.B_accum _ ->
            input_depth + 1))
    bg.bnodes;
  (* Ascending-depth order; stable within a depth level. *)
  let order =
    List.init n Fun.id
    |> List.stable_sort (fun a b -> Stdlib.compare depths.(a) depths.(b))
  in
  let compute_depths =
    Array.to_list bg.bnodes
    |> List.mapi (fun i node -> (i, node))
    |> List.filter_map (fun (i, node) ->
           if is_compute node then Some depths.(i) else None)
  in
  let distinct = List.sort_uniq Stdlib.compare compute_depths in
  let n_compute = List.length compute_depths in
  {
    order;
    depths;
    syncthreads = max 0 (List.length distinct - 1);
    naive_syncthreads = max 0 (n_compute - 1);
  }

let kernel_schedules (g : Graph.kernel_graph) =
  Array.to_list g.knodes
  |> List.mapi (fun i node -> (i, node))
  |> List.filter_map (fun (i, (node : Graph.kernel_node)) ->
         match node.kop with
         | Graph.K_graphdef bg -> Some (i, block_schedule bg)
         | Graph.K_input _ | Graph.K_prim _ -> None)

let total_syncthreads (g : Graph.kernel_graph) =
  Array.fold_left
    (fun acc (node : Graph.kernel_node) ->
      match node.kop with
      | Graph.K_graphdef bg ->
          let s = block_schedule bg in
          acc + (s.syncthreads * Graph.total_iters bg)
      | Graph.K_input _ | Graph.K_prim _ -> acc)
    0 g.knodes
