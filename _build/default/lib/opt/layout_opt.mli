(** Tensor layout selection (paper §6, "Tensor layouts"), as a 0-1 ILP.

    For every shared-memory tensor of a block graph and every candidate
    layout, a boolean selection variable is created; operator
    requirements become linear constraints and per-choice cost terms
    model the performance effect:
    - input iterators prefer the device tensor's layout (row-major) so
      the tile can be bulk-copied;
    - matmul prefers a row-major left operand and a column-major right
      operand (cuTLASS fragment loading);
    - elementwise operators require all operands and the result to share
      a layout (hard constraint);
    - accumulators preserve their input's layout (hard constraint);
    - output savers prefer row-major (device tensors are row-major).

    The exact B&B solver of {!Ilp} returns the optimal assignment. *)

open Tensor

type assignment = {
  layouts : (int * Layout.t) list;  (** block node -> chosen layout *)
  cost : float;  (** total penalty of the optimum, in model cost units *)
  naive_cost : float;  (** penalty of the all-row-major strawman *)
}

val optimize_block :
  Mugraph.Graph.block_graph ->
  kernel_inputs:Shape.t list ->
  assignment option
(** [None] when the hard constraints are unsatisfiable (does not happen
    for well-formed block graphs — elementwise chains can always fall
    back to row-major). *)

val optimize :
  Mugraph.Graph.kernel_graph -> (int * assignment) list
(** One assignment per graph-defined kernel node. *)

val total_cost : Mugraph.Graph.kernel_graph -> float * float
(** (optimal, naive) summed over custom kernels. *)
