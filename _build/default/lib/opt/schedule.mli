(** Operator scheduling (paper §6, "Operator scheduling").

    Within a thread block, operators at the same dependency depth can
    execute without an intervening [__syncthreads()]; Mirage computes
    each node's depth (longest path from any input operator) by dynamic
    programming and schedules in ascending depth order, which minimizes
    the number of block-level synchronizations. *)

type t = {
  order : int list;  (** node indices in execution order *)
  depths : int array;  (** per-node depth *)
  syncthreads : int;  (** synchronization points of the depth schedule *)
  naive_syncthreads : int;
      (** syncs of the straw-man schedule with a barrier after every
          operator (the ablation baseline) *)
}

val block_schedule : Mugraph.Graph.block_graph -> t
(** Depths over computation nodes (initers are depth 0 producers;
    outsavers do not synchronize). The sync count is
    [max 0 (#distinct computation depths - 1)] per loop iteration. *)

val kernel_schedules : Mugraph.Graph.kernel_graph -> (int * t) list
(** One schedule per graph-defined kernel node. *)

val total_syncthreads : Mugraph.Graph.kernel_graph -> int
(** Sum over custom kernels of syncs × for-loop iterations. *)
