lib/opt/schedule.ml: Array Fun Graph List Mugraph Stdlib
