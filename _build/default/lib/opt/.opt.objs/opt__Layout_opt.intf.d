lib/opt/layout_opt.mli: Layout Mugraph Shape Tensor
