lib/opt/memplan.mli: Mugraph Shape Tensor
