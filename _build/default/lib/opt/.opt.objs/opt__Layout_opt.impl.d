lib/opt/layout_opt.ml: Array Graph Ilp Infer Layout List Mugraph Op Option Printf Shape String Tensor
