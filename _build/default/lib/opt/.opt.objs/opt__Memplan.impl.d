lib/opt/memplan.ml: Array Graph Infer List Mugraph Option Schedule Shape Stdlib Tensor
