lib/opt/optimizer.ml: Array Buffer Gpusim Graph Infer Layout_opt List Memplan Mugraph Printf Schedule
