lib/opt/optimizer.mli: Gpusim Layout_opt Memplan Mugraph Schedule
