lib/opt/schedule.mli: Mugraph
