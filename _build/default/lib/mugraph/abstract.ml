module E = Absexpr.Expr

let thread_exprs (tg : Graph.thread_graph) ~input_exprs ~input_shapes =
  let input_exprs = Array.of_list input_exprs in
  let shapes = Infer.thread_shapes tg ~inputs:input_shapes in
  let exprs = Array.make (Array.length tg.tnodes) (E.var "?") in
  Array.iteri
    (fun i (node : Graph.thread_node) ->
      exprs.(i) <-
        (match node.top with
        | Graph.T_input k -> input_exprs.(k)
        | Graph.T_prim p ->
            let in_shapes = List.map (fun j -> shapes.(j)) node.tins in
            Op.abstract p ~in_shapes (List.map (fun j -> exprs.(j)) node.tins)))
    tg.tnodes;
  exprs

let block_exprs (bg : Graph.block_graph) ~kernel_input_exprs
    ~kernel_input_shapes =
  let kernel_input_exprs = Array.of_list kernel_input_exprs in
  let shapes = Infer.block_shapes bg ~kernel_inputs:kernel_input_shapes in
  let exprs = Array.make (Array.length bg.bnodes) (E.var "?") in
  Array.iteri
    (fun i (node : Graph.block_node) ->
      let in_exprs = List.map (fun j -> exprs.(j)) node.bins in
      let in_shapes = List.map (fun j -> shapes.(j)) node.bins in
      exprs.(i) <-
        (match node.bop with
        | Graph.B_initer { input; _ } -> kernel_input_exprs.(input)
        | Graph.B_prim p -> Op.abstract p ~in_shapes in_exprs
        | Graph.B_accum { fmap } ->
            (* sum over every for-loop dim accumulated with phi; mapped
               dims concatenate and are transparent (Table 1 row Accum). *)
            let factor = ref 1 in
            Array.iteri
              (fun l t ->
                if t = Dmap.Replica then factor := !factor * bg.forloop.(l))
              fmap;
            E.sum !factor (List.hd in_exprs)
        | Graph.B_outsaver _ -> List.hd in_exprs
        | Graph.B_threadgraph tg ->
            let es =
              thread_exprs tg ~input_exprs:in_exprs ~input_shapes:in_shapes
            in
            es.(Array.length es - 1)))
    bg.bnodes;
  exprs

let kernel_exprs (g : Graph.kernel_graph) =
  let shapes = Infer.kernel_shapes g in
  let exprs = Array.make (Array.length g.knodes) [||] in
  Array.iteri
    (fun i (node : Graph.kernel_node) ->
      let in_exprs =
        List.map
          (fun ({ node = j; port } : Graph.tensor_ref) -> exprs.(j).(port))
          node.kins
      in
      let in_shapes =
        List.map
          (fun ({ node = j; port } : Graph.tensor_ref) -> shapes.(j).(port))
          node.kins
      in
      exprs.(i) <-
        (match node.kop with
        | Graph.K_input { name; _ } -> [| E.var name |]
        | Graph.K_prim p -> [| Op.abstract p ~in_shapes in_exprs |]
        | Graph.K_graphdef bg ->
            let es =
              block_exprs bg ~kernel_input_exprs:in_exprs
                ~kernel_input_shapes:in_shapes
            in
            Array.to_list bg.bnodes
            |> List.mapi (fun bi n -> (bi, n))
            |> List.filter_map (fun (bi, (n : Graph.block_node)) ->
                   match n.bop with
                   | Graph.B_outsaver _ -> Some es.(bi)
                   | _ -> None)
            |> Array.of_list))
    g.knodes;
  exprs

let output_exprs g =
  let exprs = kernel_exprs g in
  List.map
    (fun ({ node; port } : Graph.tensor_ref) -> exprs.(node).(port))
    g.outputs

module Nf = Absexpr.Nf

let prim_nf (p : Op.prim) ~(in_shapes : Tensor.Shape.t list) (nfs : Nf.t list)
    : Nf.t =
  match p, nfs, in_shapes with
  | Op.Matmul, [ x; y ], [ a; _ ] ->
      let k = a.(Array.length a - 1) in
      Nf.nf_sum k (Nf.nf_mul x y)
  | Op.Binary Op.Add, [ x; y ], _ -> Nf.nf_add x y
  | Op.Binary Op.Mul, [ x; y ], _ -> Nf.nf_mul x y
  | Op.Binary Op.Div, [ x; y ], _ -> Nf.nf_div x y
  | Op.Binary Op.Sub, [ x; y ], _ ->
      Nf.nf_add x (Nf.nf_mul (Nf.nf_var "__neg") y)
  | Op.Unary Op.Exp, [ x ], _ -> Nf.nf_exp x
  | Op.Unary Op.Sqr, [ x ], _ -> Nf.nf_mul x x
  | Op.Unary Op.Sqrt, [ x ], _ -> Nf.nf_sqrt x
  | Op.Unary Op.Silu, [ x ], _ -> Nf.nf_silu x
  | Op.Unary Op.Relu, [ x ], _ -> Nf.nf_silu (Nf.nf_silu x)
  | Op.Sum { group; _ }, [ x ], _ -> Nf.nf_sum group x
  | Op.Repeat _, [ x ], _ | Op.Reshape _, [ x ], _ | Op.Transpose, [ x ], _ ->
      x
  | Op.Concat_matmul, [ w; x; y; z ], [ ws; xs; _; _ ] ->
      Nf.nf_add
        (Nf.nf_sum ws.(1) (Nf.nf_mul w y))
        (Nf.nf_sum xs.(1) (Nf.nf_mul x z))
  | _ -> invalid_arg (Printf.sprintf "Abstract.prim_nf %s" (Op.name p))
