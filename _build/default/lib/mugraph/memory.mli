(** Memory usage accounting — the MemoryCheck of Algorithm 1 (line 12):
    every kernel-graph tensor must fit in device memory and every block
    graph's tensors must fit in shared memory.

    The generator uses the conservative sum of all live block tensors; the
    post-verification memory planner ({!Opt.Memplan} in lib/opt) computes
    actual offsets and may pack tighter using lifetimes. *)

open Tensor

type limits = {
  smem_bytes_per_block : int;  (** usable shared memory per SM *)
  dmem_bytes : int;  (** device memory capacity *)
  elt_bytes : int;  (** bytes per element (2 for fp16, as evaluated) *)
}

val default_limits : limits
(** A100-like: 160 KiB usable shared memory, 40 GiB device memory, fp16. *)

val block_smem_bytes :
  elt_bytes:int -> Graph.block_graph -> kernel_inputs:Shape.t list -> int
(** Sum of the per-block sizes of all shared-memory-resident tensors:
    initer tiles, loop-body intermediates, accumulated tensors and
    epilogue intermediates. Thread-graph interiors live in registers and
    are excluded; outsaver targets live in device memory. *)

val kernel_dmem_bytes : elt_bytes:int -> Graph.kernel_graph -> int
(** Sum of all kernel-level tensor sizes (inputs, intermediates,
    outputs). *)

val check : limits -> Graph.kernel_graph -> bool
(** Both constraints; false also when shape inference fails. *)
