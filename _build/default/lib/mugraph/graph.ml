type tensor_ref = { node : int; port : int }

type thread_op = T_input of int | T_prim of Op.prim

type thread_node = { top : thread_op; tins : int list }

type thread_graph = { tnodes : thread_node array }

type block_op =
  | B_initer of { input : int; imap : Dmap.imap; fmap : Dmap.fmap }
  | B_prim of Op.prim
  | B_accum of { fmap : Dmap.fmap }
  | B_outsaver of { omap : Dmap.omap }
  | B_threadgraph of thread_graph

type block_node = { bop : block_op; bins : int list }

type block_graph = {
  grid : int array;
  forloop : int array;
  bnodes : block_node array;
}

type kernel_op =
  | K_input of { name : string; shape : int array }
  | K_prim of Op.prim
  | K_graphdef of block_graph

type kernel_node = { kop : kernel_op; kins : tensor_ref list }

type kernel_graph = { knodes : kernel_node array; outputs : tensor_ref list }

exception Ill_formed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

let num_block_outputs bg =
  Array.fold_left
    (fun acc n -> match n.bop with B_outsaver _ -> acc + 1 | _ -> acc)
    0 bg.bnodes

let block_initer_count bg =
  Array.fold_left
    (fun acc n -> match n.bop with B_initer _ -> acc + 1 | _ -> acc)
    0 bg.bnodes

let num_outputs = function
  | K_input _ | K_prim _ -> 1
  | K_graphdef bg -> num_block_outputs bg

let block_arity = function
  | B_initer _ -> 0
  | B_prim p -> Op.arity p
  | B_accum _ | B_outsaver _ -> 1
  | B_threadgraph tg ->
      Array.fold_left
        (fun acc n -> match n.top with T_input _ -> acc + 1 | _ -> acc)
        0 tg.tnodes

let validate_thread_graph tg n_inputs =
  let n = Array.length tg.tnodes in
  if n = 0 then fail "thread graph: empty";
  Array.iteri
    (fun i node ->
      (match node.top with
      | T_input k ->
          if k < 0 || k >= n_inputs then
            fail "thread graph: T_input %d out of range" k;
          if node.tins <> [] then fail "thread graph: T_input with inputs"
      | T_prim p ->
          if not (Op.allowed_at p Op.Thread) then
            fail "thread graph: %s not allowed at thread level"
              (Op.to_string p);
          if List.length node.tins <> Op.arity p then
            fail "thread graph: arity mismatch on %s" (Op.to_string p));
      List.iter
        (fun j ->
          if j < 0 || j >= i then
            fail "thread graph: node %d references %d (not topological)" i j)
        node.tins)
    tg.tnodes;
  (match tg.tnodes.(n - 1).top with
  | T_prim _ -> ()
  | T_input _ -> fail "thread graph: output must be a computed node")

(* A node is post-loop ("epilogue") iff it is an accumulator or transitively
   consumes one: accumulated values exist only after the for-loop, so
   everything downstream of an Accum executes once per block, after the
   loop (paper Fig. 4b: Sqrt and Div run on accumulated tensors). *)
let post_loop_nodes bg =
  let n = Array.length bg.bnodes in
  let post = Array.make n false in
  Array.iteri
    (fun i node ->
      match node.bop with
      | B_accum _ -> post.(i) <- true
      | _ -> if List.exists (fun j -> post.(j)) node.bins then post.(i) <- true)
    bg.bnodes;
  post

(* Loop-invariant nodes: initers whose fmap replicates across every
   for-loop dim, and pure functions of loop-invariant values. These may be
   read from the epilogue even though they are computed in the loop body. *)
let loop_invariant_nodes bg =
  let n = Array.length bg.bnodes in
  let inv = Array.make n false in
  Array.iteri
    (fun i node ->
      match node.bop with
      | B_initer { fmap; _ } ->
          inv.(i) <- Array.for_all (fun t -> t = Dmap.Replica) fmap
      | B_prim _ | B_threadgraph _ ->
          inv.(i) <- List.for_all (fun j -> inv.(j)) node.bins
      | B_accum _ | B_outsaver _ -> ())
    bg.bnodes;
  inv


let validate_block_graph bg n_kernel_inputs =
  let ng = Array.length bg.grid and nl = Array.length bg.forloop in
  if ng < 1 || ng > 3 then fail "block graph: grid must have 1-3 dims";
  if nl > 2 then fail "block graph: at most 2 for-loop dims";
  Array.iter
    (fun d -> if d <= 0 then fail "block graph: grid dims must be positive")
    bg.grid;
  Array.iter
    (fun d ->
      if d <= 0 then fail "block graph: for-loop dims must be positive")
    bg.forloop;
  if num_block_outputs bg = 0 then fail "block graph: no outsaver";
  let has_loop = Array.fold_left ( * ) 1 bg.forloop > 1 in
  Array.iteri
    (fun i node ->
      (match node.bop with
      | B_initer { input; imap; fmap } ->
          if input < 0 || input >= n_kernel_inputs then
            fail "block graph: initer input %d out of range" input;
          if Array.length imap <> ng then
            fail "block graph: imap length %d <> grid dims %d"
              (Array.length imap) ng;
          if Array.length fmap <> nl then
            fail "block graph: fmap length %d <> loop dims %d"
              (Array.length fmap) nl
      | B_prim p ->
          if not (Op.allowed_at p Op.Block) then
            fail "block graph: %s not allowed at block level"
              (Op.to_string p)
      | B_accum { fmap } ->
          if Array.length fmap <> nl then
            fail "block graph: accum fmap length mismatch"
      | B_outsaver { omap } ->
          if Array.length omap <> ng then
            fail "block graph: omap length %d <> grid dims %d"
              (Array.length omap) ng
      | B_threadgraph tg -> validate_thread_graph tg (List.length node.bins));
      if List.length node.bins <> block_arity node.bop then
        fail "block graph: node %d arity mismatch" i;
      List.iter
        (fun j ->
          if j < 0 || j >= i then
            fail "block graph: node %d references %d (not topological)" i j;
          match bg.bnodes.(j).bop with
          | B_outsaver _ -> fail "block graph: outsaver output consumed"
          | _ -> ())
        node.bins)
    bg.bnodes;
  (* Phase discipline: accumulators consume loop-body values; when a
     for-loop is present, outsavers must read post-loop or loop-invariant
     values (anything else would save an arbitrary iteration's value). *)
  let post = post_loop_nodes bg and inv = loop_invariant_nodes bg in
  Array.iteri
    (fun i node ->
      match node.bop with
      | B_accum _ ->
          List.iter
            (fun j ->
              if post.(j) then
                fail "block graph: accumulator %d consumes a post-loop value"
                  i)
            node.bins
      | B_outsaver _ ->
          if has_loop then
            List.iter
              (fun j ->
                if not (post.(j) || inv.(j)) then
                  fail
                    "block graph: outsaver %d reads a loop-varying value \
                     without accumulation"
                    i)
              node.bins
      | B_initer _ | B_prim _ | B_threadgraph _ ->
          (* A node reading a post-loop (accumulated) value executes in
             the epilogue; its other inputs must then also be available
             after the loop (post-loop or loop-invariant), otherwise it
             would read an arbitrary iteration's value. *)
          if List.exists (fun j -> post.(j)) node.bins then
            List.iter
              (fun j ->
                if not (post.(j) || inv.(j)) then
                  fail
                    "block graph: node %d mixes post-loop and loop-varying \
                     inputs"
                    i)
              node.bins)
    bg.bnodes

let validate g =
  let n = Array.length g.knodes in
  Array.iteri
    (fun i node ->
      (match node.kop with
      | K_input { shape; _ } ->
          if node.kins <> [] then fail "kernel: input node with inputs";
          if Array.length shape = 0 then fail "kernel: rank-0 input";
          Array.iter
            (fun d -> if d <= 0 then fail "kernel: non-positive input dim")
            shape
      | K_prim p ->
          if not (Op.allowed_at p Op.Kernel) then
            fail "kernel: %s not allowed at kernel level" (Op.to_string p);
          if List.length node.kins <> Op.arity p then
            fail "kernel: arity mismatch on %s" (Op.to_string p)
      | K_graphdef bg -> validate_block_graph bg (List.length node.kins));
      List.iter
        (fun { node = j; port } ->
          if j < 0 || j >= i then
            fail "kernel: node %d references %d (not topological)" i j;
          if port < 0 || port >= num_outputs g.knodes.(j).kop then
            fail "kernel: node %d references invalid port %d of node %d" i
              port j)
        node.kins)
    g.knodes;
  if g.outputs = [] then fail "kernel: no outputs";
  List.iter
    (fun { node = j; port } ->
      if j < 0 || j >= n then fail "kernel: output references node %d" j;
      if port < 0 || port >= num_outputs g.knodes.(j).kop then
        fail "kernel: output references invalid port %d of node %d" port j)
    g.outputs

let input_names g =
  Array.to_list g.knodes
  |> List.filter_map (fun n ->
         match n.kop with K_input { name; _ } -> Some name | _ -> None)

let input_shapes g =
  Array.to_list g.knodes
  |> List.filter_map (fun n ->
         match n.kop with
         | K_input { shape; _ } -> Some (Tensor.Shape.create shape)
         | _ -> None)

let kernel_op_count g =
  Array.fold_left
    (fun acc n -> match n.kop with K_input _ -> acc | _ -> acc + 1)
    0 g.knodes

let block_op_count bg =
  Array.fold_left
    (fun acc n ->
      match n.bop with
      | B_initer _ | B_outsaver _ -> acc
      | B_prim _ | B_accum _ | B_threadgraph _ -> acc + 1)
    0 bg.bnodes

let total_blocks bg = Array.fold_left ( * ) 1 bg.grid
let total_iters bg = Array.fold_left ( * ) 1 bg.forloop

module Build = struct
  type t = { mutable nodes : kernel_node list (* reversed *) }

  let create () = { nodes = [] }

  let push b node =
    b.nodes <- node :: b.nodes;
    List.length b.nodes - 1

  let input b name shape =
    let i = push b { kop = K_input { name; shape }; kins = [] } in
    { node = i; port = 0 }

  let prim b p ins =
    let i = push b { kop = K_prim p; kins = ins } in
    { node = i; port = 0 }

  let graphdef b bg ins n_outputs =
    let i = push b { kop = K_graphdef bg; kins = ins } in
    List.init n_outputs (fun port -> { node = i; port })

  let finish b ~outputs =
    let g = { knodes = Array.of_list (List.rev b.nodes); outputs } in
    validate g;
    g
end

let equal a b = Stdlib.compare a b = 0
let hash (g : kernel_graph) = Hashtbl.hash g
