open Tensor

let thread_shapes (tg : Graph.thread_graph) ~inputs =
  let inputs = Array.of_list inputs in
  let shapes = Array.make (Array.length tg.tnodes) [||] in
  Array.iteri
    (fun i (node : Graph.thread_node) ->
      shapes.(i) <-
        (match node.top with
        | Graph.T_input k -> inputs.(k)
        | Graph.T_prim p ->
            Op.infer_shape p (List.map (fun j -> shapes.(j)) node.tins)))
    tg.tnodes;
  shapes

let thread_output_shape tg ~inputs =
  let shapes = thread_shapes tg ~inputs in
  shapes.(Array.length shapes - 1)

let block_shapes (bg : Graph.block_graph) ~kernel_inputs =
  let kernel_inputs = Array.of_list kernel_inputs in
  let shapes = Array.make (Array.length bg.bnodes) [||] in
  Array.iteri
    (fun i (node : Graph.block_node) ->
      let in_shapes = List.map (fun j -> shapes.(j)) node.bins in
      shapes.(i) <-
        (match node.bop with
        | Graph.B_initer { input; imap; fmap } ->
            let s = kernel_inputs.(input) in
            if not (Dmap.valid_imap imap ~grid:bg.grid ~shape:s) then
              Graph.fail "infer: invalid imap %s for %s"
                (Dmap.imap_to_string imap) (Shape.to_string s);
            let s = Dmap.slice_shape imap ~counts:bg.grid s in
            if not (Dmap.valid_fmap fmap ~forloop:bg.forloop ~shape:s) then
              Graph.fail "infer: invalid fmap %s for %s"
                (Dmap.fmap_to_string fmap) (Shape.to_string s);
            Dmap.slice_shape fmap ~counts:bg.forloop s
        | Graph.B_prim p -> Op.infer_shape p in_shapes
        | Graph.B_accum { fmap } ->
            let s = List.hd in_shapes in
            let out = ref (Shape.create s) in
            Array.iteri
              (fun l t ->
                match t with
                | Dmap.Replica -> ()
                | Dmap.Dim d ->
                    out := Shape.scale_dim !out ~dim:d ~times:bg.forloop.(l))
              fmap;
            !out
        | Graph.B_outsaver { omap } ->
            let s = List.hd in_shapes in
            if not (Dmap.valid_omap omap ~grid:bg.grid ~shape:s) then
              Graph.fail "infer: invalid omap %s for %s"
                (Dmap.omap_to_string omap) (Shape.to_string s);
            Dmap.scaled_shape omap ~grid:bg.grid s
        | Graph.B_threadgraph tg -> thread_output_shape tg ~inputs:in_shapes))
    bg.bnodes;
  shapes

let block_output_shapes bg ~kernel_inputs =
  let shapes = block_shapes bg ~kernel_inputs in
  Array.to_list bg.bnodes
  |> List.mapi (fun i (n : Graph.block_node) -> (i, n))
  |> List.filter_map (fun (i, (n : Graph.block_node)) ->
         match n.bop with Graph.B_outsaver _ -> Some shapes.(i) | _ -> None)

let kernel_shapes (g : Graph.kernel_graph) =
  let shapes = Array.make (Array.length g.knodes) [||] in
  Array.iteri
    (fun i (node : Graph.kernel_node) ->
      let in_shapes =
        List.map
          (fun ({ node = j; port } : Graph.tensor_ref) -> shapes.(j).(port))
          node.kins
      in
      shapes.(i) <-
        (match node.kop with
        | Graph.K_input { shape; _ } -> [| Shape.create shape |]
        | Graph.K_prim p -> [| Op.infer_shape p in_shapes |]
        | Graph.K_graphdef bg ->
            Array.of_list (block_output_shapes bg ~kernel_inputs:in_shapes)))
    g.knodes;
  shapes

let output_shapes g =
  let shapes = kernel_shapes g in
  List.map
    (fun ({ node; port } : Graph.tensor_ref) -> shapes.(node).(port))
    g.outputs

let infer_opt g =
  match kernel_shapes g with
  | shapes -> Some shapes
  | exception (Graph.Ill_formed _ | Invalid_argument _) -> None
