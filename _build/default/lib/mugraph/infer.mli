(** Tensor shape inference for muGraphs (the TensorShapeInference check of
    Algorithm 1, line 11). *)

open Tensor

val thread_shapes : Graph.thread_graph -> inputs:Shape.t list -> Shape.t array
(** Shape of every thread-graph node. Thread graphs compute on whole block
    tiles; the thread-level partitioning does not change shapes. *)

val thread_output_shape : Graph.thread_graph -> inputs:Shape.t list -> Shape.t

val block_shapes :
  Graph.block_graph -> kernel_inputs:Shape.t list -> Shape.t array
(** Shape of every block-graph node's output. Initer nodes yield per-block
    per-iteration tile shapes; accumulators yield accumulated shapes;
    outsaver nodes yield the {e kernel-level} shape of the corresponding
    output of the graph-defined operator (omap concatenation applied).
    @raise Graph.Ill_formed or [Invalid_argument] on inconsistency. *)

val block_output_shapes :
  Graph.block_graph -> kernel_inputs:Shape.t list -> Shape.t list
(** Kernel-level shapes of the graph-defined operator's outputs, in
    outsaver order. *)

val kernel_shapes : Graph.kernel_graph -> Shape.t array array
(** [.(i).(j)] is the shape of port [j] of node [i].
    @raise Graph.Ill_formed or [Invalid_argument] on inconsistency. *)

val output_shapes : Graph.kernel_graph -> Shape.t list

val infer_opt : Graph.kernel_graph -> Shape.t array array option
(** [None] instead of an exception (used by the generator's validity
    check). *)
