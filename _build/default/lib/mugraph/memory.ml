open Tensor

type limits = {
  smem_bytes_per_block : int;
  dmem_bytes : int;
  elt_bytes : int;
}

let default_limits =
  {
    smem_bytes_per_block = 160 * 1024;
    dmem_bytes = 40 * 1024 * 1024 * 1024;
    elt_bytes = 2;
  }

let block_smem_bytes ~elt_bytes (bg : Graph.block_graph) ~kernel_inputs =
  let shapes = Infer.block_shapes bg ~kernel_inputs in
  let total = ref 0 in
  Array.iteri
    (fun i (node : Graph.block_node) ->
      match node.bop with
      | Graph.B_outsaver _ -> ()
      | Graph.B_initer _ | Graph.B_prim _ | Graph.B_accum _
      | Graph.B_threadgraph _ ->
          total := !total + (Shape.numel shapes.(i) * elt_bytes))
    bg.bnodes;
  !total

let kernel_dmem_bytes ~elt_bytes (g : Graph.kernel_graph) =
  let shapes = Infer.kernel_shapes g in
  Array.fold_left
    (fun acc ports ->
      Array.fold_left (fun acc s -> acc + (Shape.numel s * elt_bytes)) acc ports)
    0 shapes

let check limits (g : Graph.kernel_graph) =
  match Infer.kernel_shapes g with
  | exception (Graph.Ill_formed _ | Invalid_argument _) -> false
  | shapes ->
      kernel_dmem_bytes ~elt_bytes:limits.elt_bytes g <= limits.dmem_bytes
      && Array.for_all
           (fun (node : Graph.kernel_node) ->
             match node.kop with
             | Graph.K_graphdef bg ->
                 let kernel_inputs =
                   List.map
                     (fun ({ node = j; port } : Graph.tensor_ref) ->
                       shapes.(j).(port))
                     node.kins
                 in
                 block_smem_bytes ~elt_bytes:limits.elt_bytes bg
                   ~kernel_inputs
                 <= limits.smem_bytes_per_block
             | Graph.K_input _ | Graph.K_prim _ -> true)
           g.knodes
