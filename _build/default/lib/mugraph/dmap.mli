(** Dimension maps: how tensors are partitioned across thread blocks
    (imap/omap) and across for-loop iterations (fmap) — paper §2, Fig. 3.

    - an {e imap} maps each grid dimension to a data dimension of the
      input tensor (equal partitioning) or to the replica dimension phi;
    - an {e omap} maps each grid dimension to a data dimension of the
      output (blocks must write disjoint chunks, so phi is not allowed);
    - an {e fmap} maps each for-loop dimension to a data dimension
      (partition across iterations / concatenate outputs) or phi
      (replicate inputs / accumulate outputs in shared memory). *)

type target =
  | Dim of int  (** a data dimension of the tensor *)
  | Replica  (** the special phi dimension *)

type imap = target array
type omap = int array
type fmap = target array

val target_to_string : target -> string

val imap_to_string : imap -> string
val omap_to_string : omap -> string
val fmap_to_string : fmap -> string

val valid_imap : imap -> grid:int array -> shape:Tensor.Shape.t -> bool
(** Each [Dim d] must name a dimension of [shape] divisible by the
    corresponding grid size (phi entries are always fine). When two grid
    dims map to the same data dim the divisibility requirement composes. *)

val valid_fmap :
  fmap -> forloop:int array -> shape:Tensor.Shape.t -> bool
(** Same for for-loop partitioning, applied after any imap slicing. *)

val valid_omap : omap -> grid:int array -> shape:Tensor.Shape.t -> bool
(** Every grid dim maps to a distinct data dimension of the per-block
    output shape. *)

val slice_shape :
  target array -> counts:int array -> Tensor.Shape.t -> Tensor.Shape.t
(** The shape of one chunk: divide each mapped data dim by its count. *)

val slice :
  target array ->
  counts:int array ->
  coords:int array ->
  'a Tensor.Dense.t ->
  'a Tensor.Dense.t
(** Extract the chunk at [coords] (the block or loop index vector). *)

val scaled_shape : omap -> grid:int array -> Tensor.Shape.t -> Tensor.Shape.t
(** The kernel-level output shape produced when per-block outputs of the
    given shape are concatenated according to [omap]. *)
