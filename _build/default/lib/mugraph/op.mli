(** Primitive tensor operators supported by muGraphs (paper Table 1).

    The same primitive set is shared by the kernel, block, and thread
    levels; which levels admit which operator is encoded in
    {!levels}. Structural operators specific to block graphs (input
    iterators, accumulators, output savers) and graph-defined operators
    live in {!Graph}, not here. *)

open Tensor

type unary =
  | Exp
  | Sqr
  | Sqrt
  | Silu
  | Relu  (** not in Table 1; deliberately non-LAX, exercises partitioning *)

type binary = Add | Mul | Div | Sub

type prim =
  | Matmul
      (** innermost two dims contract; leading dims batch-broadcast *)
  | Binary of binary  (** elementwise with broadcasting *)
  | Unary of unary
  | Sum of { dim : int; group : int }
      (** paper [Sum(d_r, k_r)]: along [dim], sum every [group] elements *)
  | Repeat of { dim : int; times : int }
  | Reshape of int array
  | Transpose  (** swap the innermost two dimensions (metadata-only) *)
  | Concat_matmul
      (** §8.1 LoRA operator [f(W,X,Y,Z) = (W‖X) × (Y‖Z) = W×Y + X×Z];
          four inputs, concatenation along the contraction dim *)

type level = Kernel | Block | Thread

val arity : prim -> int
val name : prim -> string

val levels : prim -> level list
(** Graph levels at which the operator may appear (Table 1 column 2).
    [Concat_matmul] is usable at kernel and block level like [Matmul]. *)

val allowed_at : prim -> level -> bool

val is_lax : prim -> bool
(** Member of the LAX fragment (multi-linear, division, exponentiation;
    Definition 5.1). [Sqrt] and [Silu] are accepted here because the
    verifier abstracts them as opaque common subterms (DESIGN.md §2);
    [Relu] is not. *)

val infer_shape : prim -> Shape.t list -> Shape.t
(** Output shape from input shapes.
    @raise Invalid_argument on arity or shape mismatch. *)

val infer_shape_opt : prim -> Shape.t list -> Shape.t option
(** Exception-free variant for the generator's hot path: no message
    formatting on the (very common) rejection case. *)

val flops : prim -> Shape.t list -> Shape.t -> float
(** Floating-point operations performed (cost model input). *)

val equal : prim -> prim -> bool
val compare : prim -> prim -> int
val to_string : prim -> string
val pp : Format.formatter -> prim -> unit

val shape_of_tensor : 'a Tensor.Dense.t -> Shape.t

val apply :
  'a Tensor.Element.ops -> prim -> 'a Tensor.Dense.t list -> 'a Tensor.Dense.t
(** Reference functional semantics over any element domain. *)

val abstract :
  prim -> in_shapes:Shape.t list -> Absexpr.Expr.t list -> Absexpr.Expr.t
(** The operator's abstract expression (Table 1 column 3) given its
    inputs' expressions. Needs input shapes to extract reduction sizes. *)
