open Tensor

type unary = Exp | Sqr | Sqrt | Silu | Relu
type binary = Add | Mul | Div | Sub

type prim =
  | Matmul
  | Binary of binary
  | Unary of unary
  | Sum of { dim : int; group : int }
  | Repeat of { dim : int; times : int }
  | Reshape of int array
  | Transpose
  | Concat_matmul

type level = Kernel | Block | Thread

let arity = function
  | Matmul | Binary _ -> 2
  | Unary _ | Sum _ | Repeat _ | Reshape _ | Transpose -> 1
  | Concat_matmul -> 4

let name = function
  | Matmul -> "Matmul"
  | Binary Add -> "EwAdd"
  | Binary Mul -> "EwMul"
  | Binary Div -> "EwDiv"
  | Binary Sub -> "EwSub"
  | Unary Exp -> "EwExp"
  | Unary Sqr -> "Sqr"
  | Unary Sqrt -> "Sqrt"
  | Unary Silu -> "SiLU"
  | Unary Relu -> "ReLU"
  | Sum _ -> "Sum"
  | Repeat _ -> "Repeat"
  | Reshape _ -> "Reshape"
  | Transpose -> "Transpose"
  | Concat_matmul -> "ConcatMatmul"

let levels = function
  | Matmul | Binary _ | Unary (Exp | Sqr | Sqrt | Silu) ->
      [ Kernel; Block; Thread ]
  | Sum _ -> [ Kernel; Block; Thread ]
  | Repeat _ | Reshape _ | Transpose | Unary Relu -> [ Kernel; Block ]
  | Concat_matmul -> [ Kernel; Block ]

let allowed_at p l = List.mem l (levels p)

let is_lax = function
  | Matmul | Binary _ | Unary (Exp | Sqr | Sqrt | Silu) | Sum _ | Repeat _
  | Reshape _ | Transpose | Concat_matmul ->
      true
  | Unary Relu -> false

let invalid p msg shapes =
  invalid_arg
    (Printf.sprintf "%s: %s (inputs %s)" (name p) msg
       (String.concat " " (List.map Shape.to_string shapes)))

let infer_shape p shapes =
  if List.length shapes <> arity p then invalid p "wrong arity" shapes;
  match p, shapes with
  | Matmul, [ a; b ] ->
      let ra = Shape.rank a and rb = Shape.rank b in
      if ra < 2 || rb < 2 then invalid p "rank < 2" shapes;
      if a.(ra - 1) <> b.(rb - 2) then invalid p "inner dim mismatch" shapes;
      let batch =
        Shape.broadcast (Array.sub a 0 (ra - 2)) (Array.sub b 0 (rb - 2))
      in
      Array.append batch [| a.(ra - 2); b.(rb - 1) |]
  | Binary _, [ a; b ] ->
      if not (Shape.broadcast_compatible a b) then
        invalid p "not broadcastable" shapes;
      Shape.broadcast a b
  | Unary _, [ a ] -> a
  | Sum { dim; group }, [ a ] ->
      if dim < 0 || dim >= Shape.rank a then invalid p "bad dim" shapes;
      if group <= 0 || a.(dim) mod group <> 0 then
        invalid p "group does not divide dim" shapes;
      let s = Array.copy a in
      s.(dim) <- a.(dim) / group;
      s
  | Repeat { dim; times }, [ a ] ->
      if dim < 0 || dim >= Shape.rank a || times <= 0 then
        invalid p "bad repeat" shapes;
      Shape.scale_dim a ~dim ~times
  | Reshape target, [ a ] ->
      if Shape.numel target <> Shape.numel a then
        invalid p "element count mismatch" shapes;
      Shape.create target
  | Transpose, [ a ] ->
      let r = Shape.rank a in
      if r < 2 then invalid p "rank < 2" shapes;
      let s = Array.copy a in
      s.(r - 2) <- a.(r - 1);
      s.(r - 1) <- a.(r - 2);
      s
  | Concat_matmul, [ w; x; y; z ] ->
      let check2 s = if Shape.rank s <> 2 then invalid p "rank <> 2" shapes in
      List.iter check2 [ w; x; y; z ];
      let m = w.(0) and k1 = w.(1) in
      let m' = x.(0) and k2 = x.(1) in
      let k1' = y.(0) and n = y.(1) in
      let k2' = z.(0) and n' = z.(1) in
      if m <> m' || k1 <> k1' || k2 <> k2' || n <> n' then
        invalid p "concat-matmul shape mismatch" shapes;
      [| m; n |]
  | _ -> invalid p "unreachable" shapes

(* Exception-free fast path: mirrors [infer_shape] but allocates nothing
   on rejection. The generator calls this millions of times. *)
let infer_shape_opt p shapes =
  match p, shapes with
  | Matmul, [ a; b ] ->
      let ra = Shape.rank a and rb = Shape.rank b in
      if ra < 2 || rb < 2 || a.(ra - 1) <> b.(rb - 2) then None
      else if
        not
          (Shape.broadcast_compatible
             (Array.sub a 0 (ra - 2))
             (Array.sub b 0 (rb - 2)))
      then None
      else
        let batch =
          Shape.broadcast (Array.sub a 0 (ra - 2)) (Array.sub b 0 (rb - 2))
        in
        Some (Array.append batch [| a.(ra - 2); b.(rb - 1) |])
  | Binary _, [ a; b ] ->
      if Shape.broadcast_compatible a b then Some (Shape.broadcast a b)
      else None
  | Unary _, [ a ] -> Some a
  | Sum { dim; group }, [ a ] ->
      if dim < 0 || dim >= Shape.rank a || group <= 0 || a.(dim) mod group <> 0
      then None
      else begin
        let s = Array.copy a in
        s.(dim) <- a.(dim) / group;
        Some s
      end
  | Repeat { dim; times }, [ a ] ->
      if dim < 0 || dim >= Shape.rank a || times <= 0 then None
      else Some (Shape.scale_dim a ~dim ~times)
  | Reshape target, [ a ] ->
      if Shape.numel target = Shape.numel a then Some (Array.copy target)
      else None
  | Transpose, [ a ] ->
      let r = Shape.rank a in
      if r < 2 then None
      else begin
        let s = Array.copy a in
        s.(r - 2) <- a.(r - 1);
        s.(r - 1) <- a.(r - 2);
        Some s
      end
  | Concat_matmul, [ w; x; y; z ] ->
      if
        Shape.rank w = 2 && Shape.rank x = 2 && Shape.rank y = 2
        && Shape.rank z = 2
        && w.(0) = x.(0)
        && w.(1) = y.(0)
        && x.(1) = z.(0)
        && y.(1) = z.(1)
      then Some [| w.(0); y.(1) |]
      else None
  | _, _ -> None

let flops p shapes out =
  let n = float_of_int (Shape.numel out) in
  match p, shapes with
  | Matmul, [ a; _ ] ->
      let k = float_of_int a.(Shape.rank a - 1) in
      2.0 *. n *. k
  | Concat_matmul, [ w; x; _; _ ] ->
      let k1 = float_of_int w.(1) and k2 = float_of_int x.(1) in
      2.0 *. n *. (k1 +. k2)
  | Sum { group; _ }, _ -> n *. float_of_int group
  | Binary _, _ | Unary (Sqr | Relu), _ -> n
  | Unary (Exp | Sqrt), _ -> 4.0 *. n (* transcendental cost factor *)
  | Unary Silu, _ -> 6.0 *. n
  | Repeat _, _ | Reshape _, _ | Transpose, _ -> 0.0
  | _ -> n

let equal a b = Stdlib.compare a b = 0
let compare = Stdlib.compare

let to_string p =
  match p with
  | Sum { dim; group } -> Printf.sprintf "Sum(d=%d,k=%d)" dim group
  | Repeat { dim; times } -> Printf.sprintf "Repeat(d=%d,x%d)" dim times
  | Reshape s -> Printf.sprintf "Reshape%s" (Shape.to_string s)
  | _ -> name p

let pp fmt p = Format.pp_print_string fmt (to_string p)

let shape_of_tensor t = Dense.shape t

let apply ops p inputs =
  match p, inputs with
  | Matmul, [ a; b ] -> Dense.matmul ops a b
  | Binary Add, [ a; b ] -> Dense.map2 ops ops.Element.add a b
  | Binary Mul, [ a; b ] -> Dense.map2 ops ops.Element.mul a b
  | Binary Div, [ a; b ] -> Dense.map2 ops ops.Element.div a b
  | Binary Sub, [ a; b ] -> Dense.map2 ops ops.Element.sub a b
  | Unary Exp, [ a ] -> Dense.map ops.Element.exp a
  | Unary Sqr, [ a ] -> Dense.map (fun x -> ops.Element.mul x x) a
  | Unary Sqrt, [ a ] -> Dense.map ops.Element.sqrt a
  | Unary Silu, [ a ] -> Dense.map ops.Element.silu a
  | Unary Relu, [ a ] -> Dense.map ops.Element.relu a
  | Sum { dim; group }, [ a ] -> Dense.sum_grouped ops ~dim ~group a
  | Repeat { dim; times }, [ a ] -> Dense.repeat ops ~dim ~times a
  | Reshape s, [ a ] -> Dense.reshape s a
  | Transpose, [ a ] -> Dense.transpose_last2 a
  | Concat_matmul, [ w; x; y; z ] ->
      let wy = Dense.matmul ops w y and xz = Dense.matmul ops x z in
      Dense.map2 ops ops.Element.add wy xz
  | _ ->
      invalid_arg
        (Printf.sprintf "Op.apply %s: wrong number of inputs" (name p))

let abstract p ~in_shapes exprs =
  let module E = Absexpr.Expr in
  match p, exprs, in_shapes with
  | Matmul, [ x; y ], [ a; _ ] ->
      let k = a.(Shape.rank a - 1) in
      E.matmul ~k x y
  | Binary Add, [ x; y ], _ -> E.add x y
  | Binary Mul, [ x; y ], _ -> E.mul x y
  | Binary Div, [ x; y ], _ -> E.div x y
  | Binary Sub, [ x; y ], _ ->
      (* Subtraction is linear; A_eq has no laws for it, so it is encoded
         as addition of a negation marker: x - y = x + NEG*y. All add/mul
         distribution laws then apply to it for free. *)
      E.add x (E.mul (E.var "__neg") y)
  | Unary Exp, [ x ], _ -> E.exp x
  | Unary Sqr, [ x ], _ -> E.sqr x
  | Unary Sqrt, [ x ], _ -> E.sqrt x
  | Unary Silu, [ x ], _ -> E.silu x
  | Unary Relu, [ x ], _ ->
      (* Non-LAX; give it an opaque abstraction so that pruning still
         treats its input as a subexpression. Reusing silu's uninterpreted
         symbol would conflate the two, so wrap with an extra marker. *)
      E.silu (E.silu x)
  | Sum { group; _ }, [ x ], _ -> E.sum group x
  | Repeat _, [ x ], _ | Reshape _, [ x ], _ | Transpose, [ x ], _ -> x
  | Concat_matmul, [ w; x; y; z ], [ ws; xs; _; _ ] ->
      E.concat_matmul ~k1:ws.(1) ~k2:xs.(1) w x y z
  | _ -> invalid_arg (Printf.sprintf "Op.abstract %s: bad inputs" (name p))
