(** Reference functional semantics of muGraphs, generic over the element
    domain. Examples run this over floats; the probabilistic verifier runs
    it over [Z_p x Z_q].

    The interpreter realizes the paper's execution model exactly:
    - a graph-defined kernel operator runs its block graph once per block
      of the grid and once per for-loop iteration;
    - input iterators load the tile selected by imap (block index) and
      fmap (iteration index);
    - accumulators combine per-iteration values (concatenation along the
      mapped dim, elementwise sum for phi);
    - output savers' per-block results are concatenated according to omap.

    It is deliberately a specification, not a fast implementation. *)

open Tensor

val eval_thread :
  'a Element.ops ->
  Graph.thread_graph ->
  inputs:'a Dense.t list ->
  'a Dense.t

val eval_block :
  'a Element.ops ->
  Graph.block_graph ->
  inputs:'a Dense.t list ->
  'a Dense.t list
(** Outputs in outsaver order, with kernel-level shapes. *)

val eval_kernel :
  'a Element.ops ->
  Graph.kernel_graph ->
  inputs:'a Dense.t list ->
  'a Dense.t list
(** [inputs] in [K_input] declaration order; outputs follow
    [g.outputs]. @raise Invalid_argument if input shapes do not match the
    declarations. *)
