(* Rank values reuse the structural order of the IR types: input reference
   lists compare lexicographically and operator payloads structurally,
   which is a valid total order for canonicity purposes. *)

type rank = R_kernel of Graph.tensor_ref list * Graph.kernel_op
          | R_block of int list * Graph.block_op

let kernel_rank (n : Graph.kernel_node) = R_kernel (n.kins, n.kop)
let block_rank (n : Graph.block_node) = R_block (n.bins, n.bop)

let compare_rank (a : rank) (b : rank) = Stdlib.compare a b

let is_canonical (g : Graph.kernel_graph) =
  let ops =
    Array.to_list g.knodes
    |> List.filter (fun (n : Graph.kernel_node) ->
           match n.kop with Graph.K_input _ -> false | _ -> true)
  in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) ->
        compare_rank (kernel_rank a) (kernel_rank b) <= 0
        && nondecreasing rest
    | _ -> true
  in
  nondecreasing ops

let is_canonical_block (bg : Graph.block_graph) =
  let ops =
    Array.to_list bg.bnodes
    |> List.filter (fun (n : Graph.block_node) ->
           match n.bop with
           | Graph.B_prim _ | Graph.B_threadgraph _ -> true
           | Graph.B_initer _ | Graph.B_accum _ | Graph.B_outsaver _ -> false)
  in
  let rec nondecreasing = function
    | a :: (b :: _ as rest) ->
        compare_rank (block_rank a) (block_rank b) <= 0 && nondecreasing rest
    | _ -> true
  in
  nondecreasing ops

let fingerprint (g : Graph.kernel_graph) = Hashtbl.hash g
