open Tensor

let ints_to_string a =
  String.concat "x" (Array.to_list (Array.map string_of_int a))

let thread_graph_to_string (tg : Graph.thread_graph) =
  let buf = Buffer.create 64 in
  Buffer.add_string buf "thread{";
  Array.iteri
    (fun i (node : Graph.thread_node) ->
      if i > 0 then Buffer.add_string buf "; ";
      (match node.top with
      | Graph.T_input k -> Buffer.add_string buf (Printf.sprintf "t%d=in%d" i k)
      | Graph.T_prim p ->
          Buffer.add_string buf
            (Printf.sprintf "t%d=%s(%s)" i (Op.to_string p)
               (String.concat "," (List.map (Printf.sprintf "t%d") node.tins)))))
    tg.tnodes;
  Buffer.add_string buf "}";
  Buffer.contents buf

let block_graph_to_string (bg : Graph.block_graph) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "block graph: grid=%s forloop=%s\n" (ints_to_string bg.grid)
       (if Array.length bg.forloop = 0 then "-" else ints_to_string bg.forloop));
  Array.iteri
    (fun i (node : Graph.block_node) ->
      let ins = String.concat "," (List.map (Printf.sprintf "b%d") node.bins) in
      let line =
        match node.bop with
        | Graph.B_initer { input; imap; fmap } ->
            Printf.sprintf "b%d = InIter(input%d) %s %s" i input
              (Dmap.imap_to_string imap) (Dmap.fmap_to_string fmap)
        | Graph.B_prim p ->
            Printf.sprintf "b%d = %s(%s)" i (Op.to_string p) ins
        | Graph.B_accum { fmap } ->
            Printf.sprintf "b%d = Accum(%s) %s" i ins
              (Dmap.fmap_to_string fmap)
        | Graph.B_outsaver { omap } ->
            Printf.sprintf "b%d = OutSaver(%s) %s" i ins
              (Dmap.omap_to_string omap)
        | Graph.B_threadgraph tg ->
            Printf.sprintf "b%d = %s(%s)" i (thread_graph_to_string tg) ins
      in
      Buffer.add_string buf ("    " ^ line ^ "\n"))
    bg.bnodes;
  Buffer.contents buf

let kernel_graph_to_string (g : Graph.kernel_graph) =
  let buf = Buffer.create 512 in
  Array.iteri
    (fun i (node : Graph.kernel_node) ->
      let ins =
        String.concat ","
          (List.map
             (fun ({ node; port } : Graph.tensor_ref) ->
               if port = 0 then Printf.sprintf "k%d" node
               else Printf.sprintf "k%d.%d" node port)
             node.kins)
      in
      let line =
        match node.kop with
        | Graph.K_input { name; shape } ->
            Printf.sprintf "k%d = Input %s %s" i name
              (Shape.to_string shape)
        | Graph.K_prim p -> Printf.sprintf "k%d = %s(%s)" i (Op.to_string p) ins
        | Graph.K_graphdef bg ->
            Printf.sprintf "k%d = GraphDef(%s):\n%s" i ins
              (block_graph_to_string bg)
      in
      Buffer.add_string buf (line ^ "\n"))
    g.knodes;
  Buffer.add_string buf
    ("outputs: "
    ^ String.concat ","
        (List.map
           (fun ({ node; port } : Graph.tensor_ref) ->
             if port = 0 then Printf.sprintf "k%d" node
             else Printf.sprintf "k%d.%d" node port)
           g.outputs));
  Buffer.contents buf

let describe (g : Graph.kernel_graph) =
  let base = kernel_graph_to_string g in
  match Infer.infer_opt g with
  | None -> base ^ "\n(shapes: inference failed)"
  | Some shapes ->
      let buf = Buffer.create 128 in
      Buffer.add_string buf base;
      Buffer.add_string buf "\nshapes:\n";
      Array.iteri
        (fun i ports ->
          Buffer.add_string buf
            (Printf.sprintf "  k%d: %s\n" i
               (String.concat " "
                  (Array.to_list (Array.map Shape.to_string ports)))))
        shapes;
      Buffer.contents buf

let pp fmt g = Format.pp_print_string fmt (kernel_graph_to_string g)
