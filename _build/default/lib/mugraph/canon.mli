(** Canonical form of muGraphs (paper §4.1).

    Each operator [o_i] is assigned the rank [(input_i, type_i)] where
    [input_i] is its list of input tensor indices and [type_i] a total
    order on operator types. A muGraph is canonical when its operators
    appear in nondecreasing rank order; the generator only extends
    prefixes with operators of rank at least the last operator's, which
    enumerates every graph exactly once without losing any (every graph
    reorders into canonical form). *)

type rank =
  | R_kernel of Graph.tensor_ref list * Graph.kernel_op
  | R_block of int list * Graph.block_op

val kernel_rank : Graph.kernel_node -> rank
val compare_rank : rank -> rank -> int

val is_canonical : Graph.kernel_graph -> bool
(** Input nodes are exempt (they precede all operators); operator nodes
    must be in nondecreasing rank order. *)

val block_rank : Graph.block_node -> rank
val is_canonical_block : Graph.block_graph -> bool

val fingerprint : Graph.kernel_graph -> int
(** Structural hash for dedup sets. *)
