open Tensor

type target = Dim of int | Replica

type imap = target array
type omap = int array
type fmap = target array

let target_to_string = function
  | Dim d -> string_of_int d
  | Replica -> "phi"

let map_to_string prefix arr f =
  prefix ^ "{"
  ^ String.concat "," (Array.to_list (Array.map f arr))
  ^ "}"

let imap_to_string m = map_to_string "i" m target_to_string
let omap_to_string m = map_to_string "o" m string_of_int
let fmap_to_string m = map_to_string "f" m target_to_string

(* Validity: apply the slicing dimension-count product per data dim and
   check divisibility. Maps may send several grid/loop dims to the same
   data dim; the chunk counts multiply. *)
let valid_generic targets ~counts ~shape =
  Array.length targets = Array.length counts
  && begin
       let rank = Shape.rank shape in
       let per_dim = Array.make rank 1 in
       let ok = ref true in
       Array.iteri
         (fun i t ->
           match t with
           | Replica -> ()
           | Dim d ->
               if d < 0 || d >= rank then ok := false
               else per_dim.(d) <- per_dim.(d) * counts.(i))
         targets;
       !ok
       && Array.for_all2
            (fun size chunks -> size mod chunks = 0)
            shape per_dim
     end

let valid_imap m ~grid ~shape = valid_generic m ~counts:grid ~shape
let valid_fmap m ~forloop ~shape = valid_generic m ~counts:forloop ~shape

let valid_omap m ~grid ~shape =
  Array.length m = Array.length grid
  && begin
       let rank = Shape.rank shape in
       let seen = Array.make rank false in
       let ok = ref true in
       Array.iter
         (fun d ->
           if d < 0 || d >= rank || seen.(d) then ok := false
           else seen.(d) <- true)
         m;
       !ok
     end

let slice_shape targets ~counts shape =
  let s = ref (Shape.create shape) in
  Array.iteri
    (fun i t ->
      match t with
      | Replica -> ()
      | Dim d -> s := Shape.split_dim !s ~dim:d ~chunks:counts.(i))
    targets;
  !s

let slice targets ~counts ~coords t =
  let cur = ref t in
  Array.iteri
    (fun i target ->
      match target with
      | Replica -> ()
      | Dim d ->
          cur :=
            Dense.slice ~dim:d ~index:coords.(i) ~chunks:counts.(i) !cur)
    targets;
  !cur

let scaled_shape m ~grid shape =
  let s = ref (Shape.create shape) in
  Array.iteri
    (fun i d -> s := Shape.scale_dim !s ~dim:d ~times:grid.(i))
    m;
  !s
