(** Human-readable rendering of muGraphs, in the spirit of the paper's
    figures: operators with shapes, and imap/omap/fmap annotations in
    braces. *)

val thread_graph_to_string : Graph.thread_graph -> string
val block_graph_to_string : Graph.block_graph -> string
val kernel_graph_to_string : Graph.kernel_graph -> string

val describe : Graph.kernel_graph -> string
(** Full description with inferred shapes where available. *)

val pp : Format.formatter -> Graph.kernel_graph -> unit
