(** Abstract expressions of muGraph tensors (paper §4.3, Table 1).

    Graph-defined operators are "inlined": the expressions computed for the
    operator's inputs feed the lower-level graph, and the lower-level
    outputs' expressions become the operator's output expressions. Input
    iterators, output savers, Repeat and Reshape are transparent;
    accumulators with a phi fmap contribute a [sum] whose size is the
    for-loop trip count; Matmul contributes a [sum] sized by its
    (level-local) reduction dimension. *)

open Tensor

val thread_exprs :
  Graph.thread_graph ->
  input_exprs:Absexpr.Expr.t list ->
  input_shapes:Shape.t list ->
  Absexpr.Expr.t array

val block_exprs :
  Graph.block_graph ->
  kernel_input_exprs:Absexpr.Expr.t list ->
  kernel_input_shapes:Shape.t list ->
  Absexpr.Expr.t array

val kernel_exprs : Graph.kernel_graph -> Absexpr.Expr.t array array
(** [.(i).(j)]: expression of port [j] of node [i]; inputs map to
    [Var name]. *)

val output_exprs : Graph.kernel_graph -> Absexpr.Expr.t list
(** The [E_O] of Algorithm 1 (one expression per graph output). *)

val prim_nf :
  Op.prim -> in_shapes:Shape.t list -> Absexpr.Nf.t list -> Absexpr.Nf.t
(** The operator's abstract expression in normal form, built incrementally
    from already-normalized input expressions — the generator's hot path
    (extending a prefix never re-normalizes whole trees). Agrees with
    [Nf.of_expr] of {!Op.abstract}. *)
