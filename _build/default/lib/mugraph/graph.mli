(** The muGraph IR (paper §2): a hierarchical graph with a kernel graph at
    the top whose graph-defined operators are specified by block graphs,
    whose graph-defined operators are in turn specified by thread graphs.

    Nodes are stored in topological order: every input reference points to
    an earlier node, which every construction function checks. Kernel
    inputs are explicit [K_input] nodes so a tensor reference [(node,
    port)] matches the paper's index [(i, j)] of the j-th output of the
    i-th operator. *)

type tensor_ref = { node : int; port : int }

(** {1 Thread graphs}

    The lowest level (paper §2 "Thread graph"): only pre-defined thread
    operators; produced by rule-based pattern fusion (§4.2). Single
    output: the last node. *)

type thread_op =
  | T_input of int  (** position in the enclosing block node's input list *)
  | T_prim of Op.prim

type thread_node = { top : thread_op; tins : int list }

type thread_graph = { tnodes : thread_node array }

(** {1 Block graphs} *)

type block_op =
  | B_initer of { input : int; imap : Dmap.imap; fmap : Dmap.fmap }
      (** input iterator: loads chunk of the [input]-th kernel-level
          input of the enclosing graph-defined operator (§2) *)
  | B_prim of Op.prim
  | B_accum of { fmap : Dmap.fmap }
      (** for-loop accumulator: combines per-iteration values — concat
          along the mapped dim, or elementwise sum for phi (§2) *)
  | B_outsaver of { omap : Dmap.omap }
      (** writes the accumulated tensor to device memory; per-block
          results are concatenated per [omap] *)
  | B_threadgraph of thread_graph
      (** graph-defined block operator (fused elementwise tile) *)

type block_node = { bop : block_op; bins : int list }

type block_graph = {
  grid : int array;  (** number of blocks per grid dimension (1–3 dims) *)
  forloop : int array;  (** for-loop trip counts ([||] = single pass) *)
  bnodes : block_node array;
}

(** {1 Kernel graphs} *)

type kernel_op =
  | K_input of { name : string; shape : int array }
  | K_prim of Op.prim  (** pre-defined kernel (cuBLAS/cuDNN in the paper) *)
  | K_graphdef of block_graph  (** custom kernel defined by a block graph *)

type kernel_node = { kop : kernel_op; kins : tensor_ref list }

type kernel_graph = {
  knodes : kernel_node array;
  outputs : tensor_ref list;
}

(** {1 Construction and validity} *)

exception Ill_formed of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** [fail fmt ...] raises [Ill_formed] with a formatted message. *)

val validate : kernel_graph -> unit
(** Checks topological ordering, arities, port validity, that block-graph
    initers reference declared inputs, that outsavers consume accumulated
    values when a for-loop is present, and that thread graphs end in a
    producing node. @raise Ill_formed with a description otherwise. *)

val num_block_outputs : block_graph -> int
val num_outputs : kernel_op -> int
val block_initer_count : block_graph -> int

val input_names : kernel_graph -> string list
val input_shapes : kernel_graph -> Tensor.Shape.t list

val kernel_op_count : kernel_graph -> int
(** Operators excluding [K_input] nodes (the paper's "# ops in the kernel
    graph"). *)

val block_op_count : block_graph -> int
(** Operators excluding initers and outsavers (the paper's "# ops in a
    block graph" counts computation operators). *)

val total_blocks : block_graph -> int
val total_iters : block_graph -> int

val post_loop_nodes : block_graph -> bool array
(** Marks the epilogue: accumulators and everything downstream of one.
    Epilogue nodes execute once per block, after the for-loop (paper
    Fig. 4b runs Sqrt/Div on accumulated tensors). *)

val loop_invariant_nodes : block_graph -> bool array
(** Marks values identical across for-loop iterations (initers with
    all-phi fmaps and pure functions thereof); these may be read from the
    epilogue. *)

(** {1 A tiny builder DSL} *)

module Build : sig
  type t

  val create : unit -> t
  val input : t -> string -> int array -> tensor_ref
  val prim : t -> Op.prim -> tensor_ref list -> tensor_ref
  val graphdef : t -> block_graph -> tensor_ref list -> int -> tensor_ref list
  (** [graphdef b bg ins n_outputs] appends a graph-defined operator and
      returns its output refs. *)

  val finish : t -> outputs:tensor_ref list -> kernel_graph
  (** Validates before returning. *)
end

val equal : kernel_graph -> kernel_graph -> bool
val hash : kernel_graph -> int
