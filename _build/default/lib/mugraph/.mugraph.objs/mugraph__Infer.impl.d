lib/mugraph/infer.ml: Array Dmap Graph List Op Shape Tensor
