lib/mugraph/dmap.ml: Array Dense Shape String Tensor
