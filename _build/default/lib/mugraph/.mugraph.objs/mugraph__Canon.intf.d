lib/mugraph/canon.mli: Graph
