lib/mugraph/interp.ml: Array Dense Dmap Graph List Op Option Printf Shape String Tensor
