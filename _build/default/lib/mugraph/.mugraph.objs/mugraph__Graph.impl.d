lib/mugraph/graph.ml: Array Dmap Hashtbl List Op Printf Stdlib Tensor
