lib/mugraph/infer.mli: Graph Shape Tensor
