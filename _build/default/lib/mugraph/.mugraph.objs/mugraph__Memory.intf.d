lib/mugraph/memory.mli: Graph Shape Tensor
