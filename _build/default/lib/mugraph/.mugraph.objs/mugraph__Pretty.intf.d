lib/mugraph/pretty.mli: Format Graph
