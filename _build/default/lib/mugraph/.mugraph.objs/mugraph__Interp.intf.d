lib/mugraph/interp.mli: Dense Element Graph Tensor
