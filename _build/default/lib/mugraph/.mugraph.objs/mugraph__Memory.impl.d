lib/mugraph/memory.ml: Array Graph Infer List Shape Tensor
