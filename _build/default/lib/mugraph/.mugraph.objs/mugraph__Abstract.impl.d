lib/mugraph/abstract.ml: Absexpr Array Dmap Graph Infer List Op Printf Tensor
