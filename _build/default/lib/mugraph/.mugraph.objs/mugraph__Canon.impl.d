lib/mugraph/canon.ml: Array Graph Hashtbl List Stdlib
