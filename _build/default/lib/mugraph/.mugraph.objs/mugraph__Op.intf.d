lib/mugraph/op.mli: Absexpr Format Shape Tensor
