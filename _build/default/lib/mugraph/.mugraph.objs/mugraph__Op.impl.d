lib/mugraph/op.ml: Absexpr Array Dense Element Format List Printf Shape Stdlib String Tensor
