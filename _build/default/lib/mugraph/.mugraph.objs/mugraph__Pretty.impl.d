lib/mugraph/pretty.ml: Array Buffer Dmap Format Graph Infer List Op Printf Shape String Tensor
