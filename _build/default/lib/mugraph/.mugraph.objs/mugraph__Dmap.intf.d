lib/mugraph/dmap.mli: Tensor
