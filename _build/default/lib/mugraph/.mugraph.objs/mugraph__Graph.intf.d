lib/mugraph/graph.mli: Dmap Op Tensor
