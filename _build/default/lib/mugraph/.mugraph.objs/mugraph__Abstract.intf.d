lib/mugraph/abstract.mli: Absexpr Graph Op Shape Tensor
