open Tensor

let eval_thread ops (tg : Graph.thread_graph) ~inputs =
  let inputs = Array.of_list inputs in
  let n = Array.length tg.tnodes in
  let values = Array.make n None in
  let value j = Option.get values.(j) in
  Array.iteri
    (fun i (node : Graph.thread_node) ->
      let v =
        match node.top with
        | Graph.T_input k -> inputs.(k)
        | Graph.T_prim p -> Op.apply ops p (List.map value node.tins)
      in
      values.(i) <- Some v)
    tg.tnodes;
  value (n - 1)

(* Enumerate the coordinate vectors of a small mesh in row-major order. *)
let mesh_coords dims =
  let total = Array.fold_left ( * ) 1 dims in
  List.init total (fun linear ->
      let coords = Array.make (Array.length dims) 0 in
      let rem = ref linear in
      for i = Array.length dims - 1 downto 0 do
        coords.(i) <- !rem mod dims.(i);
        rem := !rem / dims.(i)
      done;
      coords)

(* Combine per-iteration (or per-block) tensors indexed row-major over
   [dims]: concatenate along data dims in mesh order, sum elementwise for
   phi targets. *)
let combine_mesh ops (targets : Dmap.target array) dims vals =
  let rec go dims vals =
    match dims with
    | [] -> ( match vals with [ v ] -> v | _ -> assert false)
    | (count, target) :: rest ->
        let chunk = List.length vals / count in
        let groups = List.init count (fun c -> List.filteri (fun i _ -> i / chunk = c) vals) in
        let subs = List.map (go rest) groups in
        (match target with
        | Dmap.Dim d -> Dense.concat ~dim:d subs
        | Dmap.Replica ->
            List.fold_left
              (fun acc v -> Dense.add_inplace_like ops acc v)
              (List.hd subs) (List.tl subs))
  in
  let dims = Array.to_list (Array.mapi (fun l count -> (count, targets.(l))) dims) in
  go dims vals

let eval_block ops (bg : Graph.block_graph) ~inputs =
  let inputs = Array.of_list inputs in
  let n = Array.length bg.bnodes in
  let post = Graph.post_loop_nodes bg in
  let loop_coords = mesh_coords bg.forloop in
  let block_results =
    List.map
      (fun bcoords ->
        (* Loop phase: evaluate loop-body nodes once per iteration,
           recording the stream of values feeding each accumulator. *)
        let accum_histories = Array.make n [] in
        let loop_final = Array.make n None in
        List.iter
          (fun lcoords ->
            let values = Array.make n None in
            let value j = Option.get values.(j) in
            Array.iteri
              (fun i (node : Graph.block_node) ->
                match node.bop with
                | Graph.B_accum _ ->
                    accum_histories.(i) <-
                      value (List.hd node.bins) :: accum_histories.(i)
                | _ when post.(i) -> ()
                | Graph.B_initer { input; imap; fmap } ->
                    let t = inputs.(input) in
                    let t = Dmap.slice imap ~counts:bg.grid ~coords:bcoords t in
                    let t =
                      Dmap.slice fmap ~counts:bg.forloop ~coords:lcoords t
                    in
                    values.(i) <- Some t
                | Graph.B_prim p ->
                    values.(i) <- Some (Op.apply ops p (List.map value node.bins))
                | Graph.B_threadgraph tg ->
                    values.(i) <-
                      Some (eval_thread ops tg ~inputs:(List.map value node.bins))
                | Graph.B_outsaver _ -> ())
              bg.bnodes;
            Array.iteri
              (fun i v -> if v <> None then loop_final.(i) <- v)
              values)
          loop_coords;
        (* Epilogue: resolve accumulators, then evaluate the post-loop
           nodes once. Loop-invariant values retain their (identical)
           last-iteration value. *)
        let values = Array.copy loop_final in
        let value j = Option.get values.(j) in
        Array.iteri
          (fun i (node : Graph.block_node) ->
            if post.(i) then
              match node.bop with
              | Graph.B_accum { fmap } ->
                  let history = List.rev accum_histories.(i) in
                  values.(i) <- Some (combine_mesh ops fmap bg.forloop history)
              | Graph.B_prim p ->
                  values.(i) <- Some (Op.apply ops p (List.map value node.bins))
              | Graph.B_threadgraph tg ->
                  values.(i) <-
                    Some (eval_thread ops tg ~inputs:(List.map value node.bins))
              | Graph.B_initer _ | Graph.B_outsaver _ -> ())
          bg.bnodes;
        (* Per-block outputs in outsaver order. *)
        Array.to_list bg.bnodes
        |> List.filter_map (fun (node : Graph.block_node) ->
               match node.bop with
               | Graph.B_outsaver { omap } ->
                   Some (omap, value (List.hd node.bins))
               | _ -> None))
      (mesh_coords bg.grid)
  in
  (* Assemble each output across blocks via its omap (every omap target is
     a data dim, so this is pure concatenation in grid order). *)
  let n_outputs = Graph.num_block_outputs bg in
  List.init n_outputs (fun k ->
      let omap, _ = List.nth (List.hd block_results) k in
      let tensors = List.map (fun outs -> snd (List.nth outs k)) block_results in
      let targets = Array.map (fun d -> Dmap.Dim d) omap in
      combine_mesh ops targets bg.grid tensors)

let eval_kernel ops (g : Graph.kernel_graph) ~inputs =
  let declared = Graph.input_shapes g in
  let given = List.map Dense.shape inputs in
  if
    List.length declared <> List.length given
    || not (List.for_all2 Shape.equal declared given)
  then
    invalid_arg
      (Printf.sprintf "Interp.eval_kernel: input shapes %s, expected %s"
         (String.concat " " (List.map Shape.to_string given))
         (String.concat " " (List.map Shape.to_string declared)));
  let next_input = ref inputs in
  let n = Array.length g.knodes in
  let values = Array.make n [||] in
  let value ({ node; port } : Graph.tensor_ref) = values.(node).(port) in
  Array.iteri
    (fun i (node : Graph.kernel_node) ->
      let ins = List.map value node.kins in
      values.(i) <-
        (match node.kop with
        | Graph.K_input _ -> (
            match !next_input with
            | t :: rest ->
                next_input := rest;
                [| t |]
            | [] -> assert false)
        | Graph.K_prim p -> [| Op.apply ops p ins |]
        | Graph.K_graphdef bg ->
            Array.of_list (eval_block ops bg ~inputs:ins)))
    g.knodes;
  List.map value g.outputs
