(** LAX partitioning (paper Fig. 1, §1): split an input tensor program
    into maximal subprograms inside the LAX fragment. Non-LAX operators
    (e.g. ReLU) become pass-through barriers executed as ordinary
    kernels; each LAX piece is superoptimized independently and the
    pieces are costed together.

    Only kernel graphs made of pre-defined operators are partitioned
    (an input program is an algorithm description, not a schedule). *)

open Mugraph

type piece = {
  id : int;
  graph : Graph.kernel_graph;
      (** self-contained subprogram: fresh inputs named ["t<n>_<p>"] for
          tensors produced by other pieces *)
  lax : bool;  (** whether this piece may be superoptimized *)
  output_names : string list;
      (** for each graph output, the ["t<n>_<p>"] name under which later
          pieces (or the program outputs) refer to it *)
}

type t = {
  pieces : piece list;  (** in dependency order *)
  original : Graph.kernel_graph;
}

val partition : Graph.kernel_graph -> t
(** @raise Invalid_argument if the input contains graph-defined
    operators (already-scheduled programs are not partitioned). *)

val num_lax_pieces : t -> int

val total_cost :
  Gpusim.Device.t ->
  t ->
  replacements:(int * Graph.kernel_graph) list ->
  Gpusim.Cost.graph_cost list
(** Cost every piece, substituting optimized graphs for the given piece
    ids (interface compatibility is the caller's obligation — the
    optimizer only ever substitutes verified-equivalent graphs). *)
