lib/mirage/mirage.ml: Buffer Gpusim Graph List Mugraph Opt Partition Printf Search
