lib/mirage/partition.ml: Array Fun Gpusim Graph Hashtbl Infer List Mugraph Op Printf Stdlib
