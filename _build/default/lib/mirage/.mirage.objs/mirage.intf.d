lib/mirage/mirage.mli: Gpusim Graph Mugraph Opt Partition Search
