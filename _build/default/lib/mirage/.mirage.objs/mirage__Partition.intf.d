lib/mirage/partition.mli: Gpusim Graph Mugraph
