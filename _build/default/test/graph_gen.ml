(* QCheck generators of random small tensor programs (kernel graphs of
   pre-defined operators), shared by the property-test suites.

   Generated graphs are well-formed by construction: operators are drawn
   only when their shape constraints hold against already-available
   tensors, and the graph output is the last produced tensor. *)

open Mugraph

type spec = {
  graph : Graph.kernel_graph;
  float_inputs : float Tensor.Dense.t list;
}

let shapes_pool = [ [| 2; 3 |]; [| 3; 3 |]; [| 3; 2 |]; [| 2; 2 |] ]

(* All (op, inputs) moves applicable to the current tensors. *)
let applicable_moves ~lax_only tensors =
  let n = List.length tensors in
  let shape i = List.nth tensors i in
  let moves = ref [] in
  let add p ins = moves := (p, ins) :: !moves in
  for i = 0 to n - 1 do
    let si = shape i in
    add (Op.Unary Op.Sqr) [ i ];
    add (Op.Unary Op.Exp) [ i ];
    if not lax_only then add (Op.Unary Op.Relu) [ i ];
    add (Op.Unary Op.Sqrt) [ i ];
    add Op.Transpose [ i ];
    Array.iteri
      (fun d size -> if size > 1 then add (Op.Sum { dim = d; group = size }) [ i ])
      si;
    for j = 0 to n - 1 do
      let sj = shape j in
      if Tensor.Shape.broadcast_compatible si sj then begin
        add (Op.Binary Op.Add) [ i; j ];
        add (Op.Binary Op.Mul) [ i; j ];
        add (Op.Binary Op.Div) [ i; j ];
        add (Op.Binary Op.Sub) [ i; j ]
      end;
      if
        Tensor.Shape.rank si = 2
        && Tensor.Shape.rank sj = 2
        && si.(1) = sj.(0)
      then add Op.Matmul [ i; j ]
    done
  done;
  !moves

(* Build a random graph with [n_inputs] inputs and [n_ops] operators.
   [exp_budget]: at most one Exp is inserted so the graph stays LAX. *)
let gen_graph ?(lax_only = true) () =
  let open QCheck2.Gen in
  let* n_inputs = int_range 1 3 in
  let* n_ops = int_range 1 5 in
  let* input_shapes = list_repeat n_inputs (oneofl shapes_pool) in
  let* seeds = list_repeat n_ops (int_range 0 1_000_000) in
  let bld = Graph.Build.create () in
  let refs =
    List.mapi
      (fun i s -> Graph.Build.input bld (Printf.sprintf "I%d" i) s)
      input_shapes
  in
  let tensors = ref (List.map (fun s -> Tensor.Shape.create s) input_shapes) in
  let refs = ref refs in
  let exp_used = ref false in
  List.iter
    (fun seed ->
      let moves =
        applicable_moves ~lax_only !tensors
        |> List.filter (fun (p, _) ->
               match p with
               | Op.Unary Op.Exp -> not !exp_used
               | _ -> true)
      in
      match moves with
      | [] -> ()
      | _ ->
          let p, ins = List.nth moves (seed mod List.length moves) in
          (if p = Op.Unary Op.Exp then exp_used := true);
          let in_refs = List.map (List.nth !refs) ins in
          let in_shapes = List.map (List.nth !tensors) ins in
          let r = Graph.Build.prim bld p in_refs in
          refs := !refs @ [ r ];
          tensors := !tensors @ [ Op.infer_shape p in_shapes ])
    seeds;
  let out = List.nth !refs (List.length !refs - 1) in
  return (Graph.Build.finish bld ~outputs:[ out ])

let gen_with_inputs ?(lax_only = true) () =
  let open QCheck2.Gen in
  let* graph = gen_graph ~lax_only () in
  let* seed = int_range 0 1_000_000 in
  let st = Random.State.make [| seed |] in
  let float_inputs =
    List.map
      (fun shape ->
        Tensor.Dense.init shape (fun _ ->
            (* keep away from 0 so divisions are stable *)
            0.25 +. Random.State.float st 1.5))
      (Graph.input_names graph
      |> List.map (fun _ -> ())
      |> List.map2 (fun s () -> s) (Graph.input_shapes graph))
  in
  return { graph; float_inputs }

let print_spec s = Pretty.kernel_graph_to_string s.graph
