(* Tests for the benchmark workloads and baseline templates: every fused
   plan must be probabilistically equivalent to its specification
   (reduced dims), every plan must construct and cost at paper dims, and
   the headline comparisons must hold on the simulator. *)

open Workloads

let a100 = Gpusim.Device.a100
let h100 = Gpusim.Device.h100

let us dev g = (Gpusim.Cost.cost dev g).Gpusim.Cost.total_us

let test_all_constructible () =
  (* constructing a benchmark validates every plan's muGraph *)
  let bs = Bench_defs.all () in
  Alcotest.(check int) "six benchmarks" 6 (List.length bs);
  List.iter
    (fun (b : Bench_defs.benchmark) ->
      Alcotest.(check bool)
        (b.name ^ " has baselines")
        true
        (List.length b.systems >= 4);
      (* shapes infer on every plan *)
      List.iter
        (fun (_, g) ->
          Alcotest.(check bool) "shapes infer" true
            (Mugraph.Infer.infer_opt g <> None))
        (("Mirage", b.mirage) :: b.systems))
    bs

let test_reduced_plans_verified () =
  List.iter
    (fun (b : Bench_defs.benchmark) ->
      let spec, plan = b.reduced () in
      Alcotest.(check string)
        (b.name ^ " reduced plan equivalent")
        "equivalent"
        (Verify.Random_test.to_string
           (Verify.Random_test.equivalent ~trials:2 ~spec plan)))
    (Bench_defs.all ())

let test_baseline_plans_verified () =
  (* the baselines must compute the same function too (at reduced dims,
     using the same template constructors as the paper-dim plans) *)
  let checks =
    [
      ( "attention unfused",
        Baselines.Templates.attention_spec ~b:2 ~gk:2 ~grp:4 ~s:128 ~dh:8,
        Baselines.Templates.attention_unfused ~b:2 ~gk:2 ~grp:4 ~s:128 ~dh:8
      );
      ( "attention heads",
        Baselines.Templates.attention_spec ~b:2 ~gk:2 ~grp:4 ~s:128 ~dh:8,
        Baselines.Templates.attention_fused_heads ~b:2 ~gk:2 ~grp:4 ~s:128
          ~dh:8 );
      ( "attention flashdecoding",
        Baselines.Templates.attention_spec ~b:2 ~gk:2 ~grp:4 ~s:128 ~dh:8,
        Baselines.Templates.attention_fused_split_kv ~b:2 ~gk:2 ~grp:4
          ~s:128 ~dh:8 ~split:2 ~group_in_block:false );
      ( "qknorm unfused",
        Baselines.Templates.qknorm_attention_spec ~b:1 ~gk:2 ~grp:2 ~s:64
          ~dh:8,
        Baselines.Templates.qknorm_attention_unfused ~b:1 ~gk:2 ~grp:2 ~s:64
          ~dh:8 );
      ( "rmsnorm unfused",
        Baselines.Templates.rmsnorm_matmul_spec ~b:4 ~h:8 ~d:16,
        Baselines.Templates.rmsnorm_matmul_unfused ~b:4 ~h:8 ~d:16 );
      ( "gatedmlp two-kernel",
        Baselines.Templates.gated_mlp_spec ~b:4 ~h:16 ~f:32,
        Baselines.Templates.gated_mlp_two_kernel ~b:4 ~h:16 ~f:32 );
      ( "ntrans unfused",
        Baselines.Templates.ntrans_spec ~b:4 ~d:32,
        Baselines.Templates.ntrans_unfused ~b:4 ~d:32 );
    ]
  in
  List.iter
    (fun (name, spec, plan) ->
      Alcotest.(check string) name "equivalent"
        (Verify.Random_test.to_string
           (Verify.Random_test.equivalent ~trials:2 ~spec plan)))
    checks

let test_mirage_wins_every_benchmark () =
  List.iter
    (fun dev ->
      List.iter
        (fun (b : Bench_defs.benchmark) ->
          let mirage = us dev b.mirage in
          List.iter
            (fun (sys, g) ->
              Alcotest.(check bool)
                (Printf.sprintf "%s: Mirage <= %s on %s" b.name sys
                   dev.Gpusim.Device.name)
                true
                (mirage <= us dev g +. 1e-9))
            b.systems)
        (Bench_defs.all ()))
    [ a100; h100 ]

let test_speedup_bands () =
  (* paper: 1.1x - 2.9x over the best baseline across benchmarks/GPUs *)
  List.iter
    (fun dev ->
      List.iter
        (fun (b : Bench_defs.benchmark) ->
          let mirage = us dev b.mirage in
          let best =
            List.fold_left
              (fun acc (_, g) -> Float.min acc (us dev g))
              infinity b.systems
          in
          let s = best /. mirage in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s: %.2fx within [1.0, 3.5]" b.name
               dev.Gpusim.Device.name s)
            true
            (s >= 1.0 && s <= 3.5))
        (Bench_defs.all ()))
    [ a100; h100 ]

let test_gqa_traffic_reduction () =
  (* §8.2: grouping queries in one block cuts DRAM traffic vs per-head
     split-KV by >5x at batch 8 *)
  let redundant =
    Baselines.Templates.attention_fused_split_kv ~b:8 ~gk:2 ~grp:8 ~s:4096
      ~dh:128 ~split:4 ~group_in_block:false
  in
  let grouped =
    Baselines.Templates.attention_fused_split_kv ~b:8 ~gk:2 ~grp:8 ~s:4096
      ~dh:128 ~split:8 ~group_in_block:true
  in
  let tr g = (Gpusim.Cost.cost a100 g).Gpusim.Cost.total_dram_bytes in
  Alcotest.(check bool) "traffic reduction > 5x" true
    (tr redundant /. tr grouped > 5.0)

let test_gatedmlp_h100_gains_more () =
  (* the paper's A100-vs-H100 signature for GatedMLP *)
  let b = Bench_defs.gated_mlp () in
  let ratio dev =
    let best =
      List.fold_left (fun acc (_, g) -> Float.min acc (us dev g)) infinity
        b.systems
    in
    best /. us dev b.mirage
  in
  Alcotest.(check bool) "H100 speedup >= A100 speedup" true
    (ratio h100 >= ratio a100)

let test_models () =
  let ms = Models.all () in
  Alcotest.(check int) "four models" 4 (List.length ms);
  List.iter
    (fun m ->
      List.iter
        (fun dev ->
          let base = Models.latency_us dev m ~optimized:false in
          let opti = Models.latency_us dev m ~optimized:true in
          let s = base /. opti in
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s: %.2fx within [1.0, 2.2]"
               m.Models.name dev.Gpusim.Device.name s)
            true
            (s >= 1.0 && s <= 2.2))
        [ a100; h100 ])
    ms

let test_by_name () =
  Alcotest.(check bool) "gqa found" true (Bench_defs.by_name "gqa" <> None);
  Alcotest.(check bool) "RMSNorm case-insensitive" true
    (Bench_defs.by_name "RMSNORM" <> None);
  Alcotest.(check bool) "unknown" true (Bench_defs.by_name "resnet" = None)

let () =
  Alcotest.run "workloads"
    [
      ( "construction",
        [
          Alcotest.test_case "all constructible" `Quick test_all_constructible;
          Alcotest.test_case "by name" `Quick test_by_name;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "mirage plans verified" `Quick
            test_reduced_plans_verified;
          Alcotest.test_case "baseline plans verified" `Quick
            test_baseline_plans_verified;
        ] );
      ( "figure7",
        [
          Alcotest.test_case "mirage never loses" `Quick
            test_mirage_wins_every_benchmark;
          Alcotest.test_case "speedup bands" `Quick test_speedup_bands;
          Alcotest.test_case "gqa traffic reduction" `Quick
            test_gqa_traffic_reduction;
          Alcotest.test_case "gatedmlp h100 signature" `Quick
            test_gatedmlp_h100_gains_more;
        ] );
      ( "figure11",
        [ Alcotest.test_case "end-to-end bands" `Quick test_models ] );
    ]
