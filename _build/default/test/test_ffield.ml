(* Tests for the finite-field substrate: Z_p arithmetic, roots of unity,
   and the Z_p x Z_q product domain of paper Table 3. *)

open Ffield

let seed = [| 0xC0FFEE |]

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Zmod ------------------------------------------------------------ *)

let test_normalize () =
  Alcotest.(check int) "positive" 3 (Zmod.normalize ~modulus:7 10);
  Alcotest.(check int) "negative" 4 (Zmod.normalize ~modulus:7 (-10));
  Alcotest.(check int) "zero" 0 (Zmod.normalize ~modulus:7 0);
  Alcotest.(check int) "exact" 0 (Zmod.normalize ~modulus:7 7)

let test_pow () =
  Alcotest.(check int) "2^10 mod 227" (1024 mod 227) (Zmod.pow ~modulus:227 2 10);
  Alcotest.(check int) "x^0" 1 (Zmod.pow ~modulus:227 5 0);
  (* Fermat: x^(p-1) = 1 *)
  for x = 1 to 226 do
    Alcotest.(check int) "fermat" 1 (Zmod.pow ~modulus:227 x 226)
  done

let test_inv () =
  for x = 1 to 112 do
    let i = Zmod.inv ~modulus:113 x in
    Alcotest.(check int) "x * x^-1 = 1" 1 (Zmod.mul ~modulus:113 x i)
  done;
  Alcotest.check_raises "inv 0" Zmod.Division_by_zero (fun () ->
      ignore (Zmod.inv ~modulus:113 0))

let test_is_prime () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check bool) (string_of_int n) expected (Zmod.is_prime n))
    [ (1, false); (2, true); (3, true); (4, false); (113, true); (227, true);
      (221, false); (0, false); (-5, false); (97, true); (91, false) ]

let test_default_primes () =
  (* The paper's implementation choice: largest p*q < 2^16, q | p - 1. *)
  Alcotest.(check bool) "p prime" true (Zmod.is_prime Zmod.default_p);
  Alcotest.(check bool) "q prime" true (Zmod.is_prime Zmod.default_q);
  Alcotest.(check int) "q | p-1" 0 ((Zmod.default_p - 1) mod Zmod.default_q);
  Alcotest.(check bool) "p*q < 2^16" true
    (Zmod.default_p * Zmod.default_q < 65536)

let test_roots_of_unity () =
  let roots = Zmod.roots_of_unity ~p:227 ~q:113 in
  Alcotest.(check int) "count" 113 (List.length roots);
  List.iter
    (fun w ->
      Alcotest.(check int) "w^q = 1" 1 (Zmod.pow ~modulus:227 w 113))
    roots;
  (* Roots are distinct. *)
  let sorted = List.sort_uniq Stdlib.compare roots in
  Alcotest.(check int) "distinct" 113 (List.length sorted)

let test_random_root () =
  let st = Random.State.make seed in
  for _ = 1 to 50 do
    let w = Zmod.random_root_of_unity ~p:227 ~q:113 st in
    Alcotest.(check int) "w^q = 1" 1 (Zmod.pow ~modulus:227 w 113)
  done

let test_primitive_root () =
  let g = Zmod.primitive_root ~modulus:227 in
  (* Order of g must be exactly 226 = 2 * 113. *)
  Alcotest.(check bool) "g^113 <> 1" true (Zmod.pow ~modulus:227 g 113 <> 1);
  Alcotest.(check bool) "g^2 <> 1" true (Zmod.pow ~modulus:227 g 2 <> 1);
  Alcotest.(check int) "g^226 = 1" 1 (Zmod.pow ~modulus:227 g 226)

let test_sqrt_opt () =
  let p = 113 in
  for x = 0 to p - 1 do
    match Zmod.sqrt_opt ~modulus:p x with
    | Some r -> Alcotest.(check int) "r*r = x" x (Zmod.mul ~modulus:p r r)
    | None ->
        (* x must be a non-residue: x^((p-1)/2) <> 1 *)
        Alcotest.(check bool) "non-residue" true
          (Zmod.pow ~modulus:p x ((p - 1) / 2) <> 1)
  done

let prop_add_assoc =
  qcheck "zmod add associative"
    QCheck2.Gen.(triple (int_range 0 226) (int_range 0 226) (int_range 0 226))
    (fun (a, b, c) ->
      let m = 227 in
      Zmod.add ~modulus:m a (Zmod.add ~modulus:m b c)
      = Zmod.add ~modulus:m (Zmod.add ~modulus:m a b) c)

let prop_mul_distrib =
  qcheck "zmod mul distributes over add"
    QCheck2.Gen.(triple (int_range 0 226) (int_range 0 226) (int_range 0 226))
    (fun (a, b, c) ->
      let m = 227 in
      Zmod.mul ~modulus:m a (Zmod.add ~modulus:m b c)
      = Zmod.add ~modulus:m (Zmod.mul ~modulus:m a b) (Zmod.mul ~modulus:m a c))

let prop_div_mul =
  qcheck "zmod div then mul roundtrips"
    QCheck2.Gen.(pair (int_range 0 226) (int_range 1 226))
    (fun (a, b) ->
      let m = 227 in
      Zmod.mul ~modulus:m (Zmod.div ~modulus:m a b) b = Zmod.normalize ~modulus:m a)

(* --- Fpair ----------------------------------------------------------- *)

let ctx () =
  let st = Random.State.make seed in
  Fpair.random_ctx st

let test_fpair_ring () =
  let c = ctx () in
  let a = Fpair.of_int c 42 and b = Fpair.of_int c 17 in
  Alcotest.(check bool) "add comm" true
    (Fpair.equal (Fpair.add c a b) (Fpair.add c b a));
  Alcotest.(check bool) "mul comm" true
    (Fpair.equal (Fpair.mul c a b) (Fpair.mul c b a));
  Alcotest.(check bool) "a - a = 0" true
    (Fpair.equal (Fpair.sub c a a) Fpair.zero);
  Alcotest.(check bool) "a * 1 = a" true
    (Fpair.equal (Fpair.mul c a Fpair.one) a);
  Alcotest.(check bool) "a / a = 1" true
    (Fpair.equal (Fpair.div c a a) Fpair.one)

let test_fpair_exp_homomorphism () =
  (* exp(x) * exp(y) agrees with exp(x + y) on the Z_p component: this is
     the identity e^x e^y = e^{x+y} realized via omega^x omega^y =
     omega^{x+y}, the property Theorem 2 relies on. *)
  let c = ctx () in
  let st = Random.State.make [| 7 |] in
  for _ = 1 to 100 do
    let x = Fpair.random c st and y = Fpair.random c st in
    let lhs = Fpair.mul c (Fpair.exp c x) (Fpair.exp c y) in
    let rhs = Fpair.exp c (Fpair.add c x y) in
    Alcotest.(check int) "Z_p components equal" rhs.Fpair.vp lhs.Fpair.vp
  done

let test_fpair_exp_consumes_q () =
  let c = ctx () in
  let x = Fpair.of_int c 5 in
  let e = Fpair.exp c x in
  Alcotest.(check bool) "q component gone" true (e.Fpair.vq = None);
  Alcotest.check_raises "second exp is non-LAX" Fpair.Not_lax (fun () ->
      ignore (Fpair.exp c e))

let test_fpair_div_by_zero () =
  let c = ctx () in
  Alcotest.check_raises "div by zero" Zmod.Division_by_zero (fun () ->
      ignore (Fpair.div c Fpair.one Fpair.zero))

let test_fpair_unsupported () =
  let c = ctx () in
  (match Fpair.sqrt c Fpair.one with
  | exception Fpair.Unsupported _ -> ()
  | _ -> Alcotest.fail "sqrt should be unsupported");
  match Fpair.silu c Fpair.one with
  | exception Fpair.Unsupported _ -> ()
  | _ -> Alcotest.fail "silu should be unsupported"

let test_make_ctx_validation () =
  (match Fpair.make_ctx ~p:10 ~q:3 ~omega:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p=10 should be rejected");
  (match Fpair.make_ctx ~p:227 ~q:7 ~omega:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "q=7 (not dividing 226) should be rejected");
  match Fpair.make_ctx ~omega:2 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "omega=2 is not a 113th root of unity"

let prop_fpair_distrib =
  let c = Lazy.from_fun ctx in
  qcheck "fpair distributivity"
    QCheck2.Gen.(triple small_nat small_nat small_nat)
    (fun (a, b, d) ->
      let c = Lazy.force c in
      let a = Fpair.of_int c a and b = Fpair.of_int c b and d = Fpair.of_int c d in
      Fpair.equal
        (Fpair.mul c a (Fpair.add c b d))
        (Fpair.add c (Fpair.mul c a b) (Fpair.mul c a d)))

let () =
  Alcotest.run "ffield"
    [
      ( "zmod",
        [
          Alcotest.test_case "normalize" `Quick test_normalize;
          Alcotest.test_case "pow" `Quick test_pow;
          Alcotest.test_case "inv" `Quick test_inv;
          Alcotest.test_case "is_prime" `Quick test_is_prime;
          Alcotest.test_case "default primes" `Quick test_default_primes;
          Alcotest.test_case "roots of unity" `Quick test_roots_of_unity;
          Alcotest.test_case "random root" `Quick test_random_root;
          Alcotest.test_case "primitive root" `Quick test_primitive_root;
          Alcotest.test_case "tonelli-shanks" `Quick test_sqrt_opt;
          prop_add_assoc;
          prop_mul_distrib;
          prop_div_mul;
        ] );
      ( "fpair",
        [
          Alcotest.test_case "ring laws" `Quick test_fpair_ring;
          Alcotest.test_case "exp homomorphism" `Quick
            test_fpair_exp_homomorphism;
          Alcotest.test_case "exp consumes Z_q" `Quick
            test_fpair_exp_consumes_q;
          Alcotest.test_case "division by zero" `Quick test_fpair_div_by_zero;
          Alcotest.test_case "sqrt/silu unsupported" `Quick
            test_fpair_unsupported;
          Alcotest.test_case "ctx validation" `Quick test_make_ctx_validation;
          prop_fpair_distrib;
        ] );
    ]
