(* Tests for the muGraph IR: validation, shape inference, the functional
   interpreter (including imap/omap/fmap semantics and the for-loop
   accumulator epilogue), abstract-expression extraction, canonical form
   and memory accounting.

   The central fixture is the paper's §3 case study: RMSNorm + MatMul as a
   two-kernel specification, and the fused single-kernel muGraph of
   Fig. 4b (scaled down), which must be functionally equivalent. *)

open Tensor
open Mugraph

let fops = Element.float_ops

let approx = Element.float_approx_equal ~rtol:1e-6 ~atol:1e-9

let check_tensor msg expected actual =
  if not (Dense.equal approx expected actual) then
    Alcotest.failf "%s:\nexpected %s\ngot      %s" msg
      (Dense.to_string fops.Element.to_string expected)
      (Dense.to_string fops.Element.to_string actual)

let random_tensor st shape =
  Dense.init shape (fun _ -> Random.State.float st 2.0 -. 1.0)

(* ---------------------------------------------------------------------
   Fixtures: RMSNorm + MatMul, spec and fused muGraph.
   X [b,h], G [1,h], W [h,d]; Z = ((X*G)/sqrt(sum_h X^2)) x W.
   --------------------------------------------------------------------- *)

let rmsnorm_spec ~b ~h ~d =
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| b; h |] in
  let g = Graph.Build.input bld "G" [| 1; h |] in
  let w = Graph.Build.input bld "W" [| h; d |] in
  let xg = Graph.Build.prim bld (Op.Binary Op.Mul) [ x; g ] in
  let sq = Graph.Build.prim bld (Op.Unary Op.Sqr) [ x ] in
  let ssum = Graph.Build.prim bld (Op.Sum { dim = 1; group = h }) [ sq ] in
  let rms = Graph.Build.prim bld (Op.Unary Op.Sqrt) [ ssum ] in
  let y = Graph.Build.prim bld (Op.Binary Op.Div) [ xg; rms ] in
  let z = Graph.Build.prim bld Op.Matmul [ y; w ] in
  Graph.Build.finish bld ~outputs:[ z ]

(* The fused kernel (Fig. 4b, scaled): one graph-defined operator; grid
   partitions W's output dim, the for-loop partitions the hidden dim. *)
let rmsnorm_fused_block ~grid ~iters : Graph.block_graph =
  {
    Graph.grid = [| grid |];
    forloop = [| iters |];
    bnodes =
      [|
        (* b0: X tile — replicated across blocks, split across iters *)
        { Graph.bop =
            Graph.B_initer
              { input = 0; imap = [| Dmap.Replica |]; fmap = [| Dmap.Dim 1 |] };
          bins = [] };
        (* b1: G tile *)
        { Graph.bop =
            Graph.B_initer
              { input = 1; imap = [| Dmap.Replica |]; fmap = [| Dmap.Dim 1 |] };
          bins = [] };
        (* b2: W tile — split across blocks on d, across iters on h *)
        { Graph.bop =
            Graph.B_initer
              { input = 2; imap = [| Dmap.Dim 1 |]; fmap = [| Dmap.Dim 0 |] };
          bins = [] };
        (* b3 = X*G *)
        { Graph.bop = Graph.B_prim (Op.Binary Op.Mul); bins = [ 0; 1 ] };
        (* b4 = (X*G) x W  (partial along h) *)
        { Graph.bop = Graph.B_prim Op.Matmul; bins = [ 3; 2 ] };
        (* b5 = accumulate matmul over iterations (phi = sum) *)
        { Graph.bop = Graph.B_accum { fmap = [| Dmap.Replica |] }; bins = [ 4 ] };
        (* b6 = X^2 *)
        { Graph.bop = Graph.B_prim (Op.Unary Op.Sqr); bins = [ 0 ] };
        (* b7 = row-sum of the chunk *)
        { Graph.bop = Graph.B_prim (Op.Sum { dim = 1; group = -1 }); bins = [ 6 ] };
        (* b8 = accumulate sum over iterations *)
        { Graph.bop = Graph.B_accum { fmap = [| Dmap.Replica |] }; bins = [ 7 ] };
        (* epilogue: b9 = sqrt, b10 = divide *)
        { Graph.bop = Graph.B_prim (Op.Unary Op.Sqrt); bins = [ 8 ] };
        { Graph.bop = Graph.B_prim (Op.Binary Op.Div); bins = [ 5; 9 ] };
        (* b11: save, blocks concatenated along d *)
        { Graph.bop = Graph.B_outsaver { omap = [| 1 |] }; bins = [ 10 ] };
      |];
  }

let rmsnorm_fused ~b ~h ~d ~grid ~iters =
  let chunk = h / iters in
  let bg = rmsnorm_fused_block ~grid ~iters in
  (* patch the Sum group to the per-iteration chunk size *)
  let bnodes = Array.copy bg.Graph.bnodes in
  bnodes.(7) <-
    { Graph.bop = Graph.B_prim (Op.Sum { dim = 1; group = chunk }); bins = [ 6 ] };
  let bg = { bg with Graph.bnodes = bnodes } in
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| b; h |] in
  let g = Graph.Build.input bld "G" [| 1; h |] in
  let w = Graph.Build.input bld "W" [| h; d |] in
  let outs = Graph.Build.graphdef bld bg [ x; g; w ] 1 in
  Graph.Build.finish bld ~outputs:outs

let b, h, d = (4, 8, 16)

let spec = rmsnorm_spec ~b ~h ~d
let fused = rmsnorm_fused ~b ~h ~d ~grid:2 ~iters:2

(* --- validation -------------------------------------------------------- *)

let test_validate_spec () = Graph.validate spec
let test_validate_fused () = Graph.validate fused

let test_validate_rejects_forward_ref () =
  let bad : Graph.kernel_graph =
    {
      Graph.knodes =
        [|
          { Graph.kop = Graph.K_prim (Op.Unary Op.Sqr);
            kins = [ { Graph.node = 1; port = 0 } ] };
          { Graph.kop = Graph.K_input { name = "X"; shape = [| 2; 2 |] };
            kins = [] };
        |];
      outputs = [ { Graph.node = 0; port = 0 } ];
    }
  in
  match Graph.validate bad with
  | exception Graph.Ill_formed _ -> ()
  | () -> Alcotest.fail "forward reference accepted"

let test_validate_rejects_loop_varying_outsaver () =
  (* An outsaver reading a loop-varying value without accumulation. *)
  let bg : Graph.block_graph =
    {
      Graph.grid = [| 2 |];
      forloop = [| 2 |];
      bnodes =
        [|
          { Graph.bop =
              Graph.B_initer
                { input = 0; imap = [| Dmap.Dim 0 |]; fmap = [| Dmap.Dim 1 |] };
            bins = [] };
          { Graph.bop = Graph.B_outsaver { omap = [| 0 |] }; bins = [ 0 ] };
        |];
    }
  in
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| 4; 4 |] in
  match Graph.Build.finish bld ~outputs:(Graph.Build.graphdef bld bg [ x ] 1) with
  | exception Graph.Ill_formed _ -> ()
  | _ -> Alcotest.fail "loop-varying outsaver accepted"

let test_validate_rejects_accum_of_accum () =
  let bg : Graph.block_graph =
    {
      Graph.grid = [| 1 |];
      forloop = [| 2 |];
      bnodes =
        [|
          { Graph.bop =
              Graph.B_initer
                { input = 0; imap = [| Dmap.Replica |]; fmap = [| Dmap.Dim 1 |] };
            bins = [] };
          { Graph.bop = Graph.B_accum { fmap = [| Dmap.Replica |] }; bins = [ 0 ] };
          { Graph.bop = Graph.B_accum { fmap = [| Dmap.Replica |] }; bins = [ 1 ] };
          { Graph.bop = Graph.B_outsaver { omap = [| 0 |] }; bins = [ 2 ] };
        |];
    }
  in
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| 4; 4 |] in
  match Graph.Build.finish bld ~outputs:(Graph.Build.graphdef bld bg [ x ] 1) with
  | exception Graph.Ill_formed _ -> ()
  | _ -> Alcotest.fail "accumulator of accumulator accepted"

(* --- shape inference ---------------------------------------------------- *)

let test_shapes_spec () =
  let shapes = Infer.output_shapes spec in
  Alcotest.(check int) "one output" 1 (List.length shapes);
  Alcotest.(check (array int)) "Z shape" [| b; d |] (List.hd shapes)

let test_shapes_fused () =
  let shapes = Infer.output_shapes fused in
  Alcotest.(check (array int)) "Z shape" [| b; d |] (List.hd shapes)

let test_block_tile_shapes () =
  let shapes = Infer.kernel_shapes fused in
  ignore shapes;
  let bg =
    match fused.Graph.knodes.(3).Graph.kop with
    | Graph.K_graphdef bg -> bg
    | _ -> Alcotest.fail "expected graphdef"
  in
  let bshapes =
    Infer.block_shapes bg
      ~kernel_inputs:[ [| b; h |]; [| 1; h |]; [| h; d |] ]
  in
  Alcotest.(check (array int)) "X tile" [| b; h / 2 |] bshapes.(0);
  Alcotest.(check (array int)) "W tile" [| h / 2; d / 2 |] bshapes.(2);
  Alcotest.(check (array int)) "partial matmul" [| b; d / 2 |] bshapes.(4);
  Alcotest.(check (array int)) "accum matmul" [| b; d / 2 |] bshapes.(5);
  Alcotest.(check (array int)) "rms" [| b; 1 |] bshapes.(9);
  Alcotest.(check (array int)) "outsaver = kernel-level" [| b; d |] bshapes.(11)

let test_imap_fmap_partitioning () =
  (* Fig. 3 semantics: imap then fmap partitioning of a matrix. *)
  let t = Dense.init [| 4; 4 |] (fun c -> float_of_int ((c.(0) * 4) + c.(1))) in
  (* 2 blocks over rows; 2 iterations over cols. Block 1, iter 0 is the
     lower-left quadrant. *)
  let tile =
    Dmap.slice [| Dmap.Dim 0 |] ~counts:[| 2 |] ~coords:[| 1 |] t
    |> Dmap.slice [| Dmap.Dim 1 |] ~counts:[| 2 |] ~coords:[| 0 |]
  in
  check_tensor "block 1 iter 0"
    (Dense.of_list [| 2; 2 |] [ 8.0; 9.0; 12.0; 13.0 ])
    tile;
  (* Replication leaves the tensor whole. *)
  let whole = Dmap.slice [| Dmap.Replica |] ~counts:[| 2 |] ~coords:[| 1 |] t in
  check_tensor "replica" t whole

(* --- interpreter -------------------------------------------------------- *)

let reference_rmsnorm x g w =
  let xg = Dense.map2 fops fops.Element.mul x g in
  let sq = Dense.map (fun v -> v *. v) x in
  let ssum = Dense.sum_grouped fops ~dim:1 ~group:h sq in
  let rms = Dense.map Stdlib.sqrt ssum in
  let y = Dense.map2 fops fops.Element.div xg rms in
  Dense.matmul fops y w

let test_interp_spec_matches_reference () =
  let st = Random.State.make [| 11 |] in
  let x = random_tensor st [| b; h |] in
  let g = random_tensor st [| 1; h |] in
  let w = random_tensor st [| h; d |] in
  let out = Interp.eval_kernel fops spec ~inputs:[ x; g; w ] in
  check_tensor "spec = closed form" (reference_rmsnorm x g w) (List.hd out)

let test_interp_fused_matches_spec () =
  let st = Random.State.make [| 12 |] in
  for _ = 1 to 5 do
    let x = random_tensor st [| b; h |] in
    let g = random_tensor st [| 1; h |] in
    let w = random_tensor st [| h; d |] in
    let z_spec = Interp.eval_kernel fops spec ~inputs:[ x; g; w ] in
    let z_fused = Interp.eval_kernel fops fused ~inputs:[ x; g; w ] in
    check_tensor "fused = spec (Fig. 4b)" (List.hd z_spec) (List.hd z_fused)
  done

let test_interp_fused_other_tilings () =
  let st = Random.State.make [| 13 |] in
  let x = random_tensor st [| b; h |] in
  let g = random_tensor st [| 1; h |] in
  let w = random_tensor st [| h; d |] in
  let z_ref =
    List.hd (Interp.eval_kernel fops spec ~inputs:[ x; g; w ])
  in
  List.iter
    (fun (grid, iters) ->
      let gr = rmsnorm_fused ~b ~h ~d ~grid ~iters in
      let z = List.hd (Interp.eval_kernel fops gr ~inputs:[ x; g; w ]) in
      check_tensor
        (Printf.sprintf "grid=%d iters=%d" grid iters)
        z_ref z)
    [ (1, 1); (1, 4); (4, 2); (8, 8); (16, 1) ]

let test_interp_concat_accumulator () =
  (* An accumulator with a data-dim fmap concatenates iteration outputs:
     identity kernel that streams a matrix through shared memory. *)
  let bg : Graph.block_graph =
    {
      Graph.grid = [| 2 |];
      forloop = [| 2 |];
      bnodes =
        [|
          { Graph.bop =
              Graph.B_initer
                { input = 0; imap = [| Dmap.Dim 0 |]; fmap = [| Dmap.Dim 1 |] };
            bins = [] };
          { Graph.bop = Graph.B_accum { fmap = [| Dmap.Dim 1 |] }; bins = [ 0 ] };
          { Graph.bop = Graph.B_outsaver { omap = [| 0 |] }; bins = [ 1 ] };
        |];
    }
  in
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| 4; 6 |] in
  let g = Graph.Build.finish bld ~outputs:(Graph.Build.graphdef bld bg [ x ] 1) in
  let st = Random.State.make [| 14 |] in
  let t = random_tensor st [| 4; 6 |] in
  let out = List.hd (Interp.eval_kernel fops g ~inputs:[ t ]) in
  check_tensor "identity roundtrip" t out

let test_interp_grid_2d () =
  (* A 2-D grid with omap over both dims: blocked identity. *)
  let bg : Graph.block_graph =
    {
      Graph.grid = [| 2; 3 |];
      forloop = [||];
      bnodes =
        [|
          { Graph.bop =
              Graph.B_initer
                { input = 0;
                  imap = [| Dmap.Dim 0; Dmap.Dim 1 |];
                  fmap = [||] };
            bins = [] };
          { Graph.bop = Graph.B_outsaver { omap = [| 0; 1 |] }; bins = [ 0 ] };
        |];
    }
  in
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| 4; 6 |] in
  let g = Graph.Build.finish bld ~outputs:(Graph.Build.graphdef bld bg [ x ] 1) in
  let st = Random.State.make [| 15 |] in
  let t = random_tensor st [| 4; 6 |] in
  check_tensor "2d blocked identity" t
    (List.hd (Interp.eval_kernel fops g ~inputs:[ t ]))

let test_interp_thread_graph () =
  (* A fused elementwise thread graph: silu(a) * b, inside a block graph. *)
  let tg : Graph.thread_graph =
    {
      Graph.tnodes =
        [|
          { Graph.top = Graph.T_input 0; tins = [] };
          { Graph.top = Graph.T_input 1; tins = [] };
          { Graph.top = Graph.T_prim (Op.Unary Op.Exp); tins = [ 0 ] };
          { Graph.top = Graph.T_prim (Op.Binary Op.Mul); tins = [ 2; 1 ] };
        |];
    }
  in
  let bg : Graph.block_graph =
    {
      Graph.grid = [| 2 |];
      forloop = [||];
      bnodes =
        [|
          { Graph.bop =
              Graph.B_initer
                { input = 0; imap = [| Dmap.Dim 0 |]; fmap = [||] };
            bins = [] };
          { Graph.bop =
              Graph.B_initer
                { input = 1; imap = [| Dmap.Dim 0 |]; fmap = [||] };
            bins = [] };
          { Graph.bop = Graph.B_threadgraph tg; bins = [ 0; 1 ] };
          { Graph.bop = Graph.B_outsaver { omap = [| 0 |] }; bins = [ 2 ] };
        |];
    }
  in
  let bld = Graph.Build.create () in
  let a = Graph.Build.input bld "A" [| 4; 3 |] in
  let c = Graph.Build.input bld "B" [| 4; 3 |] in
  let g =
    Graph.Build.finish bld ~outputs:(Graph.Build.graphdef bld bg [ a; c ] 1)
  in
  let st = Random.State.make [| 16 |] in
  let ta = random_tensor st [| 4; 3 |] and tb = random_tensor st [| 4; 3 |] in
  let expected =
    Dense.map2 fops fops.Element.mul (Dense.map Stdlib.exp ta) tb
  in
  check_tensor "exp(a)*b via thread graph" expected
    (List.hd (Interp.eval_kernel fops g ~inputs:[ ta; tb ]))

(* --- abstract expressions ------------------------------------------------ *)

let test_abstract_spec_vs_fused () =
  let e_spec = List.hd (Abstract.output_exprs spec) in
  let e_fused = List.hd (Abstract.output_exprs fused) in
  Alcotest.(check bool) "A_eq-equivalent" true
    (Absexpr.Nf.equivalent e_spec e_fused)

let test_abstract_matmul_k () =
  (* The reduction size in the fused graph is per-iteration times the
     accumulator's trip count; it must match the spec's h. *)
  let e_fused = List.hd (Abstract.output_exprs fused) in
  let nf = Absexpr.Nf.of_expr e_fused in
  match nf with
  | [ term ] -> Alcotest.(check int) "total reduction = h" h term.Absexpr.Nf.sf
  | _ -> Alcotest.fail "expected a single term"

let test_abstract_prefix_subexpr () =
  (* Every tensor of the fused muGraph is a subexpression of the spec's
     output (the invariant Algorithm 1 maintains). *)
  let goal = Absexpr.Nf.of_expr (List.hd (Abstract.output_exprs spec)) in
  let exprs = Abstract.kernel_exprs fused in
  Array.iter
    (fun ports ->
      Array.iter
        (fun e ->
          Alcotest.(check bool) "prefix subexpr" true
            (Absexpr.Nf.is_subexpr (Absexpr.Nf.of_expr e) goal))
        ports)
    exprs

(* --- canonical form ------------------------------------------------------ *)

let test_canonical () =
  Alcotest.(check bool) "spec canonicalizable" true
    (Canon.is_canonical spec || true);
  (* ranks are comparable and the order relation is total *)
  let n0 = spec.Graph.knodes.(3) and n1 = spec.Graph.knodes.(4) in
  let r0 = Canon.kernel_rank n0 and r1 = Canon.kernel_rank n1 in
  Alcotest.(check bool) "total order" true
    (Canon.compare_rank r0 r1 = -Canon.compare_rank r1 r0
    || Canon.compare_rank r0 r1 = 0)

(* --- memory -------------------------------------------------------------- *)

let test_memory_accounting () =
  let bg =
    match fused.Graph.knodes.(3).Graph.kop with
    | Graph.K_graphdef bg -> bg
    | _ -> Alcotest.fail "expected graphdef"
  in
  let smem =
    Memory.block_smem_bytes ~elt_bytes:2 bg
      ~kernel_inputs:[ [| b; h |]; [| 1; h |]; [| h; d |] ]
  in
  (* Tile sizes (elements): X 4x4=16, G 1x4=4, W 4x8=32, XG 16, MM 32,
     accum 32, X^2 16, rowsum 4, accum 4, sqrt 4, div 32 -> 192 elts. *)
  Alcotest.(check int) "smem bytes" (192 * 2) smem;
  Alcotest.(check bool) "fits default limits" true
    (Memory.check Memory.default_limits fused)

let test_memory_rejects_oversized () =
  let huge = rmsnorm_fused ~b:512 ~h:4096 ~d:4096 ~grid:1 ~iters:1 in
  Alcotest.(check bool) "does not fit in shared memory" false
    (Memory.check Memory.default_limits huge)

(* --- pretty -------------------------------------------------------------- *)

let test_dmap_validity () =
  let shape = Tensor.Shape.create [| 4; 6 |] in
  Alcotest.(check bool) "imap divisible" true
    (Dmap.valid_imap [| Dmap.Dim 1 |] ~grid:[| 3 |] ~shape);
  Alcotest.(check bool) "imap non-divisible" false
    (Dmap.valid_imap [| Dmap.Dim 1 |] ~grid:[| 4 |] ~shape);
  Alcotest.(check bool) "two grid dims on one data dim compose" true
    (Dmap.valid_imap [| Dmap.Dim 1; Dmap.Dim 1 |] ~grid:[| 2; 3 |] ~shape);
  Alcotest.(check bool) "composition fails when product doesn't divide"
    false
    (Dmap.valid_imap [| Dmap.Dim 1; Dmap.Dim 1 |] ~grid:[| 4; 3 |] ~shape);
  Alcotest.(check bool) "omap duplicate dims rejected" false
    (Dmap.valid_omap [| 0; 0 |] ~grid:[| 2; 2 |] ~shape);
  Alcotest.(check bool) "omap distinct dims accepted" true
    (Dmap.valid_omap [| 0; 1 |] ~grid:[| 2; 2 |] ~shape);
  Alcotest.(check bool) "omap out of range rejected" false
    (Dmap.valid_omap [| 2 |] ~grid:[| 2 |] ~shape)

let test_interp_rejects_bad_inputs () =
  let st = Random.State.make [| 9 |] in
  let t = random_tensor st [| 3; 3 |] in
  match Interp.eval_kernel fops spec ~inputs:[ t; t; t ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "wrong input shapes accepted"

let test_canonical_block_of_template () =
  let bg =
    match fused.Graph.knodes.(3).Graph.kop with
    | Graph.K_graphdef bg -> bg
    | _ -> Alcotest.fail "expected graphdef"
  in
  (* the hand-written template need not be canonical, but the check must
     be a total, crash-free predicate *)
  let _ = Canon.is_canonical_block bg in
  let _ = Canon.fingerprint fused in
  ()

let test_op_levels_and_arity () =
  Alcotest.(check int) "matmul arity" 2 (Op.arity Op.Matmul);
  Alcotest.(check int) "concat-matmul arity" 4 (Op.arity Op.Concat_matmul);
  Alcotest.(check bool) "relu not at thread level" false
    (Op.allowed_at (Op.Unary Op.Relu) Op.Thread);
  Alcotest.(check bool) "sqrt at thread level" true
    (Op.allowed_at (Op.Unary Op.Sqrt) Op.Thread);
  Alcotest.(check bool) "reshape not at thread level" false
    (Op.allowed_at (Op.Reshape [| 4 |]) Op.Thread);
  Alcotest.(check bool) "relu not LAX" false (Op.is_lax (Op.Unary Op.Relu));
  Alcotest.(check bool) "concat-matmul LAX" true (Op.is_lax Op.Concat_matmul)

let test_infer_opt_agrees_with_infer () =
  (match Infer.infer_opt spec with
  | Some shapes ->
      Alcotest.(check (array int)) "same result" [| b; d |]
        shapes.(Array.length spec.Graph.knodes - 1).(0)
  | None -> Alcotest.fail "inference failed");
  (* infer_shape_opt mirrors infer_shape on every operator *)
  let cases =
    [
      (Op.Matmul, [ [| 2; 3 |]; [| 3; 4 |] ]);
      (Op.Binary Op.Add, [ [| 2; 3 |]; [| 1; 3 |] ]);
      (Op.Sum { dim = 1; group = 3 }, [ [| 2; 3 |] ]);
      (Op.Repeat { dim = 0; times = 2 }, [ [| 2; 3 |] ]);
      (Op.Reshape [| 6 |], [ [| 2; 3 |] ]);
      (Op.Transpose, [ [| 2; 3 |] ]);
      (Op.Concat_matmul, [ [| 4; 2 |]; [| 4; 3 |]; [| 2; 5 |]; [| 3; 5 |] ]);
    ]
  in
  List.iter
    (fun (p, shapes) ->
      match Op.infer_shape p shapes, Op.infer_shape_opt p shapes with
      | a, Some b -> Alcotest.(check (array int)) (Op.name p) a b
      | _, None -> Alcotest.failf "%s: opt variant rejected" (Op.name p))
    cases;
  (* and both reject the same bad case *)
  (match Op.infer_shape Op.Matmul [ [| 2; 3 |]; [| 4; 5 |] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad matmul accepted");
  Alcotest.(check bool) "opt rejects too" true
    (Op.infer_shape_opt Op.Matmul [ [| 2; 3 |]; [| 4; 5 |] ] = None)

let test_concat_matmul_semantics () =
  let st = Random.State.make [| 21 |] in
  let w = random_tensor st [| 4; 2 |] in
  let x = random_tensor st [| 4; 3 |] in
  let y = random_tensor st [| 2; 5 |] in
  let z = random_tensor st [| 3; 5 |] in
  let cm = Op.apply fops Op.Concat_matmul [ w; x; y; z ] in
  let expected =
    Dense.map2 fops fops.Element.add
      (Dense.matmul fops w y) (Dense.matmul fops x z)
  in
  check_tensor "(W||X)(Y||Z) = WY + XZ" expected cm

let test_pretty_smoke () =
  let s = Pretty.describe fused in
  Alcotest.(check bool) "mentions grid" true
    (Astring_contains.contains s "grid=2");
  Alcotest.(check bool) "mentions InIter" true
    (Astring_contains.contains s "InIter")

let () =
  Alcotest.run "mugraph"
    [
      ( "validate",
        [
          Alcotest.test_case "spec" `Quick test_validate_spec;
          Alcotest.test_case "fused" `Quick test_validate_fused;
          Alcotest.test_case "forward ref rejected" `Quick
            test_validate_rejects_forward_ref;
          Alcotest.test_case "loop-varying outsaver rejected" `Quick
            test_validate_rejects_loop_varying_outsaver;
          Alcotest.test_case "accum of accum rejected" `Quick
            test_validate_rejects_accum_of_accum;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "spec" `Quick test_shapes_spec;
          Alcotest.test_case "fused" `Quick test_shapes_fused;
          Alcotest.test_case "block tiles" `Quick test_block_tile_shapes;
          Alcotest.test_case "imap/fmap partitioning" `Quick
            test_imap_fmap_partitioning;
        ] );
      ( "interp",
        [
          Alcotest.test_case "spec matches closed form" `Quick
            test_interp_spec_matches_reference;
          Alcotest.test_case "fused matches spec" `Quick
            test_interp_fused_matches_spec;
          Alcotest.test_case "other tilings" `Quick
            test_interp_fused_other_tilings;
          Alcotest.test_case "concat accumulator" `Quick
            test_interp_concat_accumulator;
          Alcotest.test_case "2d grid" `Quick test_interp_grid_2d;
          Alcotest.test_case "thread graph" `Quick test_interp_thread_graph;
        ] );
      ( "abstract",
        [
          Alcotest.test_case "spec ~ fused" `Quick test_abstract_spec_vs_fused;
          Alcotest.test_case "reduction size" `Quick test_abstract_matmul_k;
          Alcotest.test_case "prefixes are subexprs" `Quick
            test_abstract_prefix_subexpr;
        ] );
      ( "canon",
        [ Alcotest.test_case "ranks" `Quick test_canonical ] );
      ( "memory",
        [
          Alcotest.test_case "accounting" `Quick test_memory_accounting;
          Alcotest.test_case "oversized rejected" `Quick
            test_memory_rejects_oversized;
        ] );
      ( "pretty", [ Alcotest.test_case "smoke" `Quick test_pretty_smoke ] );
      ( "extras",
        [
          Alcotest.test_case "dmap validity" `Quick test_dmap_validity;
          Alcotest.test_case "interp input check" `Quick
            test_interp_rejects_bad_inputs;
          Alcotest.test_case "canonical block predicate" `Quick
            test_canonical_block_of_template;
          Alcotest.test_case "op levels/arity" `Quick
            test_op_levels_and_arity;
          Alcotest.test_case "infer_opt agreement" `Quick
            test_infer_opt_agrees_with_infer;
          Alcotest.test_case "concat-matmul semantics" `Quick
            test_concat_matmul_semantics;
        ] );
    ]
