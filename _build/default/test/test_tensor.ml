(* Tests for shapes, layouts and the generic dense tensor substrate. *)

open Tensor

let fops = Element.float_ops

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let float_t = Alcotest.float 1e-9

let check_tensor msg expected actual =
  Alcotest.(check bool)
    msg true
    (Dense.equal (fun a b -> Element.float_approx_equal a b) expected actual)

(* --- Shape ----------------------------------------------------------- *)

let test_shape_basics () =
  let s = Shape.create [| 2; 3; 4 |] in
  Alcotest.(check int) "rank" 3 (Shape.rank s);
  Alcotest.(check int) "numel" 24 (Shape.numel s);
  Alcotest.(check string) "to_string" "[2,3,4]" (Shape.to_string s);
  (match Shape.create [| 2; 0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero dim accepted")

let test_shape_strides () =
  let s = Shape.create [| 2; 3; 4 |] in
  Alcotest.(check (array int)) "strides" [| 12; 4; 1 |]
    (Shape.row_major_strides s)

let test_shape_coords_roundtrip () =
  let s = Shape.create [| 3; 5; 2 |] in
  for i = 0 to Shape.numel s - 1 do
    let c = Shape.coords_of_index s i in
    let i' =
      Shape.index_of_coords ~strides:(Shape.row_major_strides s) c
    in
    Alcotest.(check int) "roundtrip" i i'
  done

let test_iter_coords_order () =
  let s = Shape.create [| 2; 2 |] in
  let seen = ref [] in
  Shape.iter_coords s (fun c -> seen := Array.copy c :: !seen);
  Alcotest.(check int) "count" 4 (List.length !seen);
  Alcotest.(check bool) "row-major order" true
    (List.rev !seen = [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ])

let test_broadcast () =
  Alcotest.(check bool) "[4,8] ~ [1,8]" true
    (Shape.broadcast_compatible [| 4; 8 |] [| 1; 8 |]);
  Alcotest.(check bool) "[4,8] ~ [8]" true
    (Shape.broadcast_compatible [| 4; 8 |] [| 8 |]);
  Alcotest.(check bool) "[4,8] !~ [3,8]" false
    (Shape.broadcast_compatible [| 4; 8 |] [| 3; 8 |]);
  Alcotest.(check (array int)) "result" [| 4; 8 |]
    (Shape.broadcast [| 4; 8 |] [| 1; 8 |]);
  Alcotest.(check (array int)) "rank extend" [| 2; 4; 8 |]
    (Shape.broadcast [| 2; 4; 8 |] [| 4; 1 |])

let test_split_scale () =
  Alcotest.(check (array int)) "split" [| 4; 2 |]
    (Shape.split_dim [| 4; 8 |] ~dim:1 ~chunks:4);
  Alcotest.(check (array int)) "scale" [| 4; 32 |]
    (Shape.scale_dim [| 4; 8 |] ~dim:1 ~times:4);
  (match Shape.split_dim [| 4; 8 |] ~dim:1 ~chunks:3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-dividing split accepted")

(* --- Layout ---------------------------------------------------------- *)

let test_layout_strides () =
  let s = Shape.create [| 2; 3; 4 |] in
  Alcotest.(check (array int)) "row major" [| 12; 4; 1 |]
    (Layout.strides Layout.Row_major s);
  Alcotest.(check (array int)) "col major" [| 12; 1; 3 |]
    (Layout.strides Layout.Col_major s);
  Alcotest.(check int) "row innermost" 2
    (Layout.innermost_dim Layout.Row_major s);
  Alcotest.(check int) "col innermost" 1
    (Layout.innermost_dim Layout.Col_major s)

let test_layout_permuted () =
  let s = Shape.create [| 2; 3; 4 |] in
  let l = Layout.Permuted [| 2; 1; 0 |] in
  Alcotest.(check bool) "valid" true (Layout.is_valid l s);
  (* dim 0 is innermost (position 2): stride 1; dim 2 outermost. *)
  Alcotest.(check (array int)) "strides" [| 1; 2; 6 |] (Layout.strides l s);
  Alcotest.(check bool) "bad perm rejected" false
    (Layout.is_valid (Layout.Permuted [| 0; 0; 1 |]) s)

let test_layout_strides_cover_all_cells () =
  (* Whatever the layout, the strides must enumerate each linear index
     exactly once. *)
  let s = Shape.create [| 2; 3; 4 |] in
  List.iter
    (fun l ->
      let strides = Layout.strides l s in
      let seen = Hashtbl.create 24 in
      Shape.iter_coords s (fun c ->
          Hashtbl.replace seen (Shape.index_of_coords ~strides c) ());
      Alcotest.(check int)
        (Layout.to_string l ^ " bijective")
        24 (Hashtbl.length seen))
    [ Layout.Row_major; Layout.Col_major; Layout.Permuted [| 1; 2; 0 |] ]

(* --- Dense ----------------------------------------------------------- *)

let t_of_list shape l = Dense.of_list shape (List.map float_of_int l)

let test_create_validation () =
  match Dense.create [| 2; 2 |] [| 1.0; 2.0 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bad element count accepted"

let test_map2_broadcast () =
  let a = t_of_list [| 2; 2 |] [ 1; 2; 3; 4 ] in
  let b = t_of_list [| 1; 2 |] [ 10; 20 ] in
  let c = Dense.map2 fops fops.Element.add a b in
  check_tensor "broadcast add" (t_of_list [| 2; 2 |] [ 11; 22; 13; 24 ]) c

let test_matmul () =
  let a = t_of_list [| 2; 3 |] [ 1; 2; 3; 4; 5; 6 ] in
  let b = t_of_list [| 3; 2 |] [ 7; 8; 9; 10; 11; 12 ] in
  let c = Dense.matmul fops a b in
  check_tensor "2x3 * 3x2" (t_of_list [| 2; 2 |] [ 58; 64; 139; 154 ]) c

let test_matmul_batched () =
  let a = t_of_list [| 2; 2; 2 |] [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let b = t_of_list [| 2; 2; 2 |] [ 1; 0; 0; 1; 2; 0; 0; 2 ] in
  let c = Dense.matmul fops a b in
  check_tensor "batched identity/scale"
    (t_of_list [| 2; 2; 2 |] [ 1; 2; 3; 4; 10; 12; 14; 16 ])
    c

let test_matmul_batch_broadcast () =
  (* A batch of matrices against a single (broadcast) weight matrix. *)
  let a = t_of_list [| 2; 1; 2 |] [ 1; 2; 3; 4 ] in
  let b = t_of_list [| 2; 2 |] [ 1; 0; 0; 1 ] in
  let c = Dense.matmul fops a b in
  check_tensor "broadcast weight" (t_of_list [| 2; 1; 2 |] [ 1; 2; 3; 4 ]) c

let test_sum_grouped () =
  let a = t_of_list [| 2; 4 |] [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let full = Dense.sum_grouped fops ~dim:1 ~group:4 a in
  check_tensor "full reduce" (t_of_list [| 2; 1 |] [ 10; 26 ]) full;
  let pairs = Dense.sum_grouped fops ~dim:1 ~group:2 a in
  check_tensor "pairwise" (t_of_list [| 2; 2 |] [ 3; 7; 11; 15 ]) pairs

let test_repeat () =
  let a = t_of_list [| 1; 2 |] [ 1; 2 ] in
  let r = Dense.repeat fops ~dim:0 ~times:3 a in
  check_tensor "tile rows" (t_of_list [| 3; 2 |] [ 1; 2; 1; 2; 1; 2 ]) r

let test_slice_concat_roundtrip () =
  let a = t_of_list [| 2; 6 |] [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ] in
  let parts =
    List.init 3 (fun i -> Dense.slice ~dim:1 ~index:i ~chunks:3 a)
  in
  check_tensor "roundtrip" a (Dense.concat ~dim:1 parts);
  let s0 = List.nth parts 0 in
  check_tensor "first slice" (t_of_list [| 2; 2 |] [ 0; 1; 6; 7 ]) s0

let test_transpose () =
  let a = t_of_list [| 2; 3 |] [ 1; 2; 3; 4; 5; 6 ] in
  let at = Dense.transpose_last2 a in
  check_tensor "transpose" (t_of_list [| 3; 2 |] [ 1; 4; 2; 5; 3; 6 ]) at;
  check_tensor "involution" a (Dense.transpose_last2 at)

let test_reshape () =
  let a = t_of_list [| 2; 3 |] [ 1; 2; 3; 4; 5; 6 ] in
  let r = Dense.reshape [| 3; 2 |] a in
  check_tensor "row-major reshape" (t_of_list [| 3; 2 |] [ 1; 2; 3; 4; 5; 6 ]) r

let test_scalar_and_get () =
  let s = Dense.scalar 42.0 in
  Alcotest.(check int) "numel" 1 (Dense.numel s);
  let a = t_of_list [| 2; 3 |] [ 1; 2; 3; 4; 5; 6 ] in
  Alcotest.check float_t "get [1,2]" 6.0 (Dense.get a [| 1; 2 |])

let small_tensor_gen =
  QCheck2.Gen.(
    let* rows = int_range 1 4 and* cols = int_range 1 4 in
    let* data = list_repeat (rows * cols) (float_range (-10.0) 10.0) in
    return (Dense.of_list [| rows; cols |] data))

let prop_matmul_linear =
  qcheck "matmul is linear in first argument"
    QCheck2.Gen.(
      let* k = int_range 1 3 in
      let* m = int_range 1 3 and* n = int_range 1 3 in
      let* a1 = list_repeat (m * k) (float_range (-5.0) 5.0) in
      let* a2 = list_repeat (m * k) (float_range (-5.0) 5.0) in
      let* b = list_repeat (k * n) (float_range (-5.0) 5.0) in
      return (m, k, n, a1, a2, b))
    (fun (m, k, n, a1, a2, b) ->
      let t1 = Dense.of_list [| m; k |] a1 in
      let t2 = Dense.of_list [| m; k |] a2 in
      let tb = Dense.of_list [| k; n |] b in
      let lhs = Dense.matmul fops (Dense.map2 fops ( +. ) t1 t2) tb in
      let rhs =
        Dense.map2 fops ( +. ) (Dense.matmul fops t1 tb)
          (Dense.matmul fops t2 tb)
      in
      Dense.equal (fun a b -> Element.float_approx_equal ~rtol:1e-6 a b) lhs rhs)

let prop_sum_grouped_total =
  qcheck "grouped sums preserve the total" small_tensor_gen (fun t ->
      let shape = Dense.shape t in
      let cols = shape.(1) in
      let full = Dense.sum_grouped fops ~dim:1 ~group:cols t in
      let total2 = Dense.sum_grouped fops ~dim:0 ~group:shape.(0) full in
      let all = Array.fold_left ( +. ) 0.0 (Dense.map Fun.id t).Dense.data in
      Element.float_approx_equal ~rtol:1e-6 all (Dense.get total2 [| 0; 0 |]))

let prop_slice_concat =
  qcheck "slice/concat roundtrip"
    QCheck2.Gen.(
      let* rows = int_range 1 3 in
      let* chunks = int_range 1 3 in
      let* per = int_range 1 3 in
      let cols = chunks * per in
      let* data = list_repeat (rows * cols) (float_range (-5.0) 5.0) in
      return (rows, cols, chunks, data))
    (fun (rows, cols, chunks, data) ->
      let t = Dense.of_list [| rows; cols |] data in
      let parts =
        List.init chunks (fun i -> Dense.slice ~dim:1 ~index:i ~chunks t)
      in
      Dense.equal Float.equal t (Dense.concat ~dim:1 parts))

let () =
  Alcotest.run "tensor"
    [
      ( "shape",
        [
          Alcotest.test_case "basics" `Quick test_shape_basics;
          Alcotest.test_case "strides" `Quick test_shape_strides;
          Alcotest.test_case "coords roundtrip" `Quick
            test_shape_coords_roundtrip;
          Alcotest.test_case "iter order" `Quick test_iter_coords_order;
          Alcotest.test_case "broadcast" `Quick test_broadcast;
          Alcotest.test_case "split/scale" `Quick test_split_scale;
        ] );
      ( "layout",
        [
          Alcotest.test_case "strides" `Quick test_layout_strides;
          Alcotest.test_case "permuted" `Quick test_layout_permuted;
          Alcotest.test_case "bijective" `Quick
            test_layout_strides_cover_all_cells;
        ] );
      ( "dense",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "map2 broadcast" `Quick test_map2_broadcast;
          Alcotest.test_case "matmul" `Quick test_matmul;
          Alcotest.test_case "matmul batched" `Quick test_matmul_batched;
          Alcotest.test_case "matmul batch broadcast" `Quick
            test_matmul_batch_broadcast;
          Alcotest.test_case "sum grouped" `Quick test_sum_grouped;
          Alcotest.test_case "repeat" `Quick test_repeat;
          Alcotest.test_case "slice/concat" `Quick test_slice_concat_roundtrip;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "reshape" `Quick test_reshape;
          Alcotest.test_case "scalar/get" `Quick test_scalar_and_get;
          prop_matmul_linear;
          prop_sum_grouped_total;
          prop_slice_concat;
        ] );
    ]
