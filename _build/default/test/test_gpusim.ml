(* Tests for the GPU cost model: the qualitative behaviors the paper's
   optimizations rely on must hold in the simulator (DESIGN.md §2). *)

open Mugraph
open Baselines

let a100 = Gpusim.Device.a100
let h100 = Gpusim.Device.h100

let us dev g = (Gpusim.Cost.cost dev g).Gpusim.Cost.total_us
let bytes dev g = (Gpusim.Cost.cost dev g).Gpusim.Cost.total_dram_bytes

let test_devices () =
  Alcotest.(check bool) "a100 by name" true
    (Gpusim.Device.by_name "a100" = Some a100);
  Alcotest.(check bool) "H100 case-insensitive" true
    (Gpusim.Device.by_name "H100" = Some h100);
  Alcotest.(check bool) "unknown" true (Gpusim.Device.by_name "tpu" = None);
  Alcotest.(check int) "a100 sms" 108 a100.Gpusim.Device.num_sms;
  Alcotest.(check int) "h100 sms" 132 h100.Gpusim.Device.num_sms

let test_limits () =
  let l = Gpusim.Device.limits a100 in
  Alcotest.(check int) "smem" (164 * 1024) l.Memory.smem_bytes_per_block;
  Alcotest.(check int) "fp16" 2 l.Memory.elt_bytes

let test_fusion_reduces_launches_and_time () =
  let unfused = Templates.rmsnorm_matmul_unfused ~b:16 ~h:1024 ~d:4096 in
  let fused =
    Templates.rmsnorm_matmul_fused ~b:16 ~h:1024 ~d:4096 ~grid:128 ~iters:16
  in
  let cu = Gpusim.Cost.cost a100 unfused
  and cf = Gpusim.Cost.cost a100 fused in
  Alcotest.(check int) "two kernels" 2 cu.Gpusim.Cost.num_kernels;
  Alcotest.(check int) "one kernel" 1 cf.Gpusim.Cost.num_kernels;
  Alcotest.(check bool) "fused faster" true
    (cf.Gpusim.Cost.total_us < cu.Gpusim.Cost.total_us);
  Alcotest.(check bool) "fused avoids Y round-trip" true
    (cf.Gpusim.Cost.total_dram_bytes < cu.Gpusim.Cost.total_dram_bytes)

let test_h100_faster_than_a100 () =
  let g = Templates.gated_mlp_spec ~b:16 ~h:1024 ~f:4096 in
  Alcotest.(check bool) "H100 faster" true (us h100 g < us a100 g)

let test_underutilized_grid_penalized () =
  (* heads-only attention at batch 1 launches 16 blocks on 108 SMs *)
  let few =
    Templates.attention_fused_heads ~b:1 ~gk:2 ~grp:8 ~s:4096 ~dh:128
  in
  let many =
    Templates.attention_fused_split_kv ~b:1 ~gk:2 ~grp:8 ~s:4096 ~dh:128
      ~split:64 ~group_in_block:true
  in
  Alcotest.(check bool) "16 blocks slower than 128" true
    (us a100 many < us a100 few)

let test_l2_absorbs_small_replication () =
  (* the RMSNorm fused kernel replicates X (32 KB) across 128 blocks:
     the traffic must be ~the unique footprint, not 128x *)
  let fused =
    Templates.rmsnorm_matmul_fused ~b:16 ~h:1024 ~d:4096 ~grid:128 ~iters:16
  in
  let x_bytes = float_of_int (16 * 1024 * 2) in
  let w_bytes = float_of_int (1024 * 4096 * 2) in
  Alcotest.(check bool) "traffic ~ unique footprint" true
    (bytes a100 fused < (x_bytes +. w_bytes) *. 1.2)

let test_big_replication_charged () =
  (* per-head split-KV at batch 8 re-reads 32 MB of K/V per query head:
     too large for the L2, so the traffic multiplies (the paper's 7x) *)
  let redundant =
    Templates.attention_fused_split_kv ~b:8 ~gk:2 ~grp:8 ~s:4096 ~dh:128
      ~split:4 ~group_in_block:false
  in
  let shared =
    Templates.attention_fused_split_kv ~b:8 ~gk:2 ~grp:8 ~s:4096 ~dh:128
      ~split:8 ~group_in_block:true
  in
  let ratio = bytes a100 redundant /. bytes a100 shared in
  Alcotest.(check bool)
    (Printf.sprintf "DRAM ratio %.2f in [5, 9]" ratio)
    true
    (ratio > 5.0 && ratio < 9.0)

let test_launch_overhead_counted () =
  (* a tiny elementwise program is launch-bound: cost ~ #kernels * launch *)
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| 4; 4 |] in
  let a = Graph.Build.prim bld (Op.Unary Op.Sqr) [ x ] in
  let b = Graph.Build.prim bld (Op.Unary Op.Sqr) [ a ] in
  let c = Graph.Build.prim bld (Op.Unary Op.Sqr) [ b ] in
  let g = Graph.Build.finish bld ~outputs:[ c ] in
  let t = us a100 g in
  Alcotest.(check bool)
    (Printf.sprintf "3 launches dominate (%.2f us)" t)
    true
    (t >= 12.0 && t < 13.0)

let test_views_free () =
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| 8; 4 |] in
  let t = Graph.Build.prim bld Op.Transpose [ x ] in
  let r = Graph.Build.prim bld (Op.Reshape [| 2; 16 |]) [ t ] in
  let g = Graph.Build.finish bld ~outputs:[ r ] in
  let c = Gpusim.Cost.cost a100 g in
  Alcotest.(check int) "no kernels" 0 c.Gpusim.Cost.num_kernels;
  Alcotest.(check (float 1e-9)) "free" 0.0 c.Gpusim.Cost.total_us

let test_speedup_helper () =
  let fast = Templates.rmsnorm_matmul_fused ~b:16 ~h:1024 ~d:4096 ~grid:128 ~iters:16 in
  let slow = Templates.rmsnorm_matmul_unfused ~b:16 ~h:1024 ~d:4096 in
  let s =
    Gpusim.Cost.speedup
      ~baseline:(Gpusim.Cost.cost a100 slow)
      (Gpusim.Cost.cost a100 fast)
  in
  Alcotest.(check bool) "speedup > 1" true (s > 1.0)

let test_thread_fusion_reduces_smem_traffic () =
  let plain =
    Templates.gated_mlp_fused ~b:16 ~h:1024 ~f:4096 ~grid:128 ~iters:16
  in
  let fused = Search.Thread_fuse.fuse_kernel plain in
  let smem_of g =
    List.fold_left
      (fun acc (k : Gpusim.Cost.kernel_cost) -> acc +. k.Gpusim.Cost.smem_us)
      0.0
      (Gpusim.Cost.kernel_costs a100 g)
  in
  Alcotest.(check bool) "register-resident epilogue is cheaper" true
    (smem_of fused <= smem_of plain)

let () =
  Alcotest.run "gpusim"
    [
      ( "device",
        [
          Alcotest.test_case "lookup" `Quick test_devices;
          Alcotest.test_case "limits" `Quick test_limits;
        ] );
      ( "cost",
        [
          Alcotest.test_case "fusion wins" `Quick
            test_fusion_reduces_launches_and_time;
          Alcotest.test_case "h100 faster" `Quick test_h100_faster_than_a100;
          Alcotest.test_case "grid utilization" `Quick
            test_underutilized_grid_penalized;
          Alcotest.test_case "L2 absorbs small replication" `Quick
            test_l2_absorbs_small_replication;
          Alcotest.test_case "large replication charged" `Quick
            test_big_replication_charged;
          Alcotest.test_case "launch overhead" `Quick
            test_launch_overhead_counted;
          Alcotest.test_case "views free" `Quick test_views_free;
          Alcotest.test_case "speedup helper" `Quick test_speedup_helper;
          Alcotest.test_case "thread fusion smem" `Quick
            test_thread_fusion_reduces_smem_traffic;
        ] );
    ]
