test/test_ilp.ml: Alcotest Float Ilp List QCheck2 QCheck_alcotest
