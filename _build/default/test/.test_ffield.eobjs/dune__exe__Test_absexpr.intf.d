test/test_absexpr.mli:
