test/test_absexpr.ml: Absexpr Alcotest Astring_contains List QCheck2 QCheck_alcotest Smtlite
