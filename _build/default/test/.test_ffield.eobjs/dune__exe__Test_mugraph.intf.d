test/test_mugraph.mli:
