test/test_gpusim.ml: Alcotest Baselines Gpusim Graph List Memory Mugraph Op Printf Search Templates
