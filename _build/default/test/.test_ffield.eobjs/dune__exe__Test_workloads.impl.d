test/test_workloads.ml: Alcotest Baselines Bench_defs Float Gpusim List Models Mugraph Printf Verify Workloads
