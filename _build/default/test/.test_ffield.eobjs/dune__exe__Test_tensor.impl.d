test/test_tensor.ml: Alcotest Array Dense Element Float Fun Hashtbl Layout List QCheck2 QCheck_alcotest Shape Tensor
