test/test_ffield.ml: Alcotest Ffield Fpair Lazy List QCheck2 QCheck_alcotest Random Stdlib Zmod
