test/graph_gen.ml: Array Graph List Mugraph Op Pretty Printf QCheck2 Random Tensor
