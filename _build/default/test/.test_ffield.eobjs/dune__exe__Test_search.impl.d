test/test_search.ml: Alcotest Array Baselines Dmap Gpusim Graph List Mugraph Op Printf Search Verify
