test/test_mirage.ml: Alcotest Astring_contains Baselines Codegen Gpusim Graph Hashtbl Interp List Mirage Mugraph Op Printf Random Search String Tensor
