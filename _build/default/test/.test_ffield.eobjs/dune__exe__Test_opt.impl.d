test/test_opt.ml: Alcotest Array Astring_contains Baselines Dmap Gpusim Graph List Mugraph Op Opt Templates Tensor
