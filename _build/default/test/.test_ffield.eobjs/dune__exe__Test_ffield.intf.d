test/test_ffield.mli:
