test/test_mirage.mli:
