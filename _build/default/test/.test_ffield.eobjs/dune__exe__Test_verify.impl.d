test/test_verify.ml: Absexpr Abstract Alcotest Astring_contains Baselines Graph List Mugraph Op QCheck2 QCheck_alcotest Verify
