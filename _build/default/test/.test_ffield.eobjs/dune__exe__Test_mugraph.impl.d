test/test_mugraph.ml: Absexpr Abstract Alcotest Array Astring_contains Canon Dense Dmap Element Graph Infer Interp List Memory Mugraph Op Pretty Printf Random Stdlib Tensor
