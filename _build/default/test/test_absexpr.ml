(* Tests for abstract expressions, the A_eq normal form, and the
   subexpression decision procedure (paper §4.3, Table 2). *)

module E = Absexpr.Expr
module Nf = Absexpr.Nf

let x = E.var "x"
let y = E.var "y"
let z = E.var "z"
let g = E.var "g"
let w = E.var "w"

let check_equiv msg a b =
  Alcotest.(check bool) msg true (Nf.equivalent a b)

let check_not_equiv msg a b =
  Alcotest.(check bool) msg false (Nf.equivalent a b)

let check_sub msg a b = Alcotest.(check bool) msg true (Nf.subexpr a b)
let check_not_sub msg a b = Alcotest.(check bool) msg false (Nf.subexpr a b)

(* --- A_eq axioms hold as normal-form equalities ----------------------- *)

let test_ac_laws () =
  check_equiv "add comm" (E.add x y) (E.add y x);
  check_equiv "mul comm" (E.mul x y) (E.mul y x);
  check_equiv "add assoc" (E.add x (E.add y z)) (E.add (E.add x y) z);
  check_equiv "mul assoc" (E.mul x (E.mul y z)) (E.mul (E.mul x y) z)

let test_distributivity () =
  check_equiv "mul over add"
    (E.add (E.mul x z) (E.mul y z))
    (E.mul (E.add x y) z);
  check_equiv "div over add"
    (E.add (E.div x z) (E.div y z))
    (E.div (E.add x y) z)

let test_div_laws () =
  check_equiv "mul of quotient"
    (E.mul x (E.div y z))
    (E.div (E.mul x y) z);
  check_equiv "nested div"
    (E.div (E.div x y) z)
    (E.div x (E.mul y z))

let test_sum_laws () =
  check_equiv "sum 1" (E.sum 1 x) x;
  check_equiv "sum of sum" (E.sum 2 (E.sum 3 x)) (E.sum 6 x);
  check_equiv "sum over add"
    (E.sum 4 (E.add x y))
    (E.add (E.sum 4 x) (E.sum 4 y));
  check_equiv "sum out of mul" (E.sum 4 (E.mul x y)) (E.mul (E.sum 4 x) y);
  check_equiv "sum out of mul (either side)"
    (E.mul (E.sum 4 x) y)
    (E.mul x (E.sum 4 y));
  check_equiv "sum out of div" (E.sum 4 (E.div x y)) (E.div (E.sum 4 x) y)

let test_no_cancellation () =
  (* A_eq deliberately has no cancellation (paper §4.3): (x*y)/y is NOT
     equivalent to x, which is what keeps the subexpression pruning
     meaningful. *)
  check_not_equiv "no mul/div cancellation" (E.div (E.mul x y) y) x;
  check_not_equiv "no add of same term collapse" (E.add x x) x

let test_reduction_sizes_matter () =
  (* sum(4, x) vs sum(8, x): keeping k in the abstraction is crucial
     (paper: Fig. 6 discussion). *)
  check_not_equiv "different sums differ" (E.sum 4 x) (E.sum 8 x);
  check_not_equiv "matmul ks differ"
    (E.matmul ~k:16 x y)
    (E.matmul ~k:32 x y)

let test_exp_opaque () =
  check_not_equiv "exp not homomorphic in A_eq"
    (E.mul (E.exp x) (E.exp y))
    (E.exp (E.add x y));
  check_equiv "exp congruence"
    (E.exp (E.mul x y))
    (E.exp (E.mul y x))

(* --- RMSNorm + MatMul (the paper's §3 case study) --------------------- *)

(* Spec: Z = Matmul(Y, W) with Y = (X*G) / sqrt(sum_h X^2), i.e. division
   before the matmul. *)
let rmsnorm_spec ~h =
  let xg = E.mul x g in
  let rms = E.sqrt (E.sum h (E.sqr x)) in
  E.matmul ~k:h (E.div xg rms) w

(* Mirage's discovered form (Fig. 4b): matmul first (accumulated across
   the for-loop), division in the epilogue. *)
let rmsnorm_fused ~h ~iters =
  let per_iter = E.matmul ~k:(h / iters) (E.mul x g) w in
  let mm = E.sum iters per_iter in
  let rms = E.sqrt (E.sum iters (E.sum (h / iters) (E.sqr x))) in
  E.div mm rms

let test_rmsnorm_equivalence () =
  check_equiv "division commutes with matmul (Fig. 4b)"
    (rmsnorm_spec ~h:64)
    (rmsnorm_fused ~h:64 ~iters:16)

let test_rmsnorm_wrong_split_rejected () =
  check_not_equiv "wrong iteration split changes the reduction size"
    (rmsnorm_spec ~h:64)
    (rmsnorm_fused ~h:32 ~iters:16)

(* --- subexpr --------------------------------------------------------- *)

let test_subexpr_axioms () =
  check_sub "x <= add(x,y)" x (E.add x y);
  check_sub "x <= mul(x,y)" x (E.mul x y);
  check_sub "x <= div(x,y)" x (E.div x y);
  check_sub "y <= div(x,y)" y (E.div x y);
  check_sub "x <= exp(x)" x (E.exp x);
  check_sub "x <= sum(i,x)" x (E.sum 4 x);
  check_sub "x <= sqrt(x)" x (E.sqrt x);
  check_sub "x <= silu(x)" x (E.silu x);
  check_sub "reflexive" (E.add x y) (E.add x y)

let test_subexpr_transitive () =
  (* x*g <= (x*g*w) <= sum(k, x*g*w) <= sum(k,x*g*w)/q *)
  let target = E.div (E.sum 8 (E.mul (E.mul x g) w)) (E.sqrt y) in
  check_sub "x*g" (E.mul x g) target;
  check_sub "sum" (E.sum 8 (E.mul (E.mul x g) w)) target;
  check_sub "inside sqrt" y target

let test_subexpr_modulo_aeq () =
  (* sum(k, x)*y is a subexpression of sum(k, x*y*z) because the sum
     floats across factors under A_eq. *)
  check_sub "sum floats"
    (E.mul (E.sum 4 x) y)
    (E.sum 4 (E.mul (E.mul x y) z));
  (* (x+y) <= (x+y)*z even after distribution. *)
  check_sub "factored sum" (E.add x y) (E.mul (E.add x y) z);
  (* partial sums of distributed products *)
  check_sub "partial term" x (E.add (E.mul x z) (E.mul y z))

let test_subexpr_negative () =
  check_not_sub "x*y not in x+y" (E.mul x y) (E.add x y);
  check_not_sub "z not in x+y" z (E.add x y);
  check_not_sub "sum too large" (E.sum 8 x) (E.sum 4 (E.mul x y));
  (* The pruning example from §4.3: for target X*Z + Y*Z, the prefix X*Y
     must be pruned while X+Y must be kept. *)
  let target = E.add (E.mul x z) (E.mul y z) in
  check_not_sub "X*Y pruned" (E.mul x y) target;
  check_sub "X+Y kept" (E.add x y) target

let test_rmsnorm_prefixes_kept () =
  let goal = rmsnorm_fused ~h:64 ~iters:16 in
  (* Every prefix computed on the way to Fig. 4b must pass the filter. *)
  check_sub "x*g" (E.mul x g) goal;
  check_sub "x^2" (E.sqr x) goal;
  check_sub "sum x^2 (chunk)" (E.sum 4 (E.sqr x)) goal;
  check_sub "accumulated sum x^2" (E.sum 64 (E.sqr x)) goal;
  check_sub "sqrt" (E.sqrt (E.sum 64 (E.sqr x))) goal;
  check_sub "partial matmul" (E.matmul ~k:4 (E.mul x g) w) goal;
  check_sub "accumulated matmul" (E.sum 64 (E.mul (E.mul x g) w)) goal;
  (* Sub-products of a term are always derivable subexpressions
     (subexpr(x, mul(x,y)) composed with the quotient structure), so g*w
     is kept even though no sensible prefix computes it: *)
  check_sub "g*w is (vacuously) derivable" (E.mul g w) goal;
  (* Real garbage is pruned. *)
  check_not_sub "x+g is garbage" (E.add x g) goal;
  check_not_sub "exp(x) is garbage" (E.exp x) goal;
  check_not_sub "x*x*g is garbage" (E.mul (E.sqr x) g) goal

(* --- division-by-quotient and exact-division corner cases -------------- *)

let test_div_by_quotient_confluent () =
  (* div(div(x, y), z) = div(x, mul(y, z)) must hold even when y or z are
     themselves quotients or sums (the D_inv / collapse machinery). *)
  let q = E.div y z in
  check_equiv "div by a quotient, two routes"
    (E.div (E.div x q) w)
    (E.div x (E.mul q w));
  check_equiv "mul pulls div out of divisor"
    (E.div x (E.mul y (E.div z w)))
    (E.div (E.div x y) (E.div z w));
  let s = E.add y z in
  check_equiv "div by sum times atom, two routes"
    (E.div (E.div x s) w)
    (E.div x (E.mul s w));
  check_equiv "div by product of sums"
    (E.div (E.div x s) (E.add w g))
    (E.div x (E.mul s (E.add w g)))

let test_subexpr_through_quotients () =
  (* subexpr(y, div(x, y)) when y is itself structured *)
  check_sub "product divisor" (E.mul y z) (E.div x (E.mul y z));
  check_sub "quotient divisor" (E.div y z) (E.div x (E.div y z));
  check_sub "sum divisor" (E.add y z) (E.div x (E.add y z));
  check_sub "partial den factor" (E.div x y) (E.div x (E.mul y z));
  check_sub "inside nested den" z (E.div x (E.div y z))

let test_exact_division_in_subexpr () =
  (* (x+y) is a subexpression of (x+y)/S for a sum S: requires exact
     polynomial division of the collapsed denominator *)
  let sum_den = E.add w g in
  check_sub "factored across collapsed den"
    (E.div x sum_den)
    (E.div (E.mul x y) sum_den);
  check_not_sub "different sum dens do not divide"
    (E.div x (E.add w x))
    (E.div (E.mul x y) sum_den)

let test_nf_to_string_smoke () =
  let nf = Nf.of_expr (E.div (E.sum 4 (E.mul x y)) (E.sqrt z)) in
  let s = Nf.to_string nf in
  Alcotest.(check bool) "mentions sqrt" true
    (Astring_contains.contains s "sqrt");
  Alcotest.(check bool) "mentions the reduction" true
    (Astring_contains.contains s "S4");
  Alcotest.(check int) "single term" 1 (Nf.num_terms nf)

(* --- normal form vs a concrete model of A_eq -------------------------- *)

let expr_gen =
  let open QCheck2.Gen in
  let vars = [ "x"; "y"; "z" ] in
  sized_size (int_range 1 10) @@ fix (fun self n ->
      if n <= 1 then map E.var (oneofl vars)
      else
        frequency
          [
            (2, map E.var (oneofl vars));
            (3, map2 E.add (self (n / 2)) (self (n / 2)));
            (3, map2 E.mul (self (n / 2)) (self (n / 2)));
            (2, map2 E.div (self (n / 2)) (self (n / 2)));
            (1, map E.exp (self (n - 1)));
            (1, map E.sqrt (self (n - 1)));
            (2, map2 (fun i e -> E.sum (i + 1) e) (int_range 1 4) (self (n - 1)));
          ])

let eval_consistent e1 e2 =
  (* If the normal forms are equal, evaluation in a model of A_eq must
     agree (soundness of the normalizer). Try several assignments; skip
     division-by-zero samples. *)
  let modulus = 10007 in
  let agree lookup =
    match
      ( E.eval lookup ~modulus e1,
        E.eval lookup ~modulus e2 )
    with
    | v1, v2 -> v1 = v2
    | exception Absexpr.Zmodel.Division_by_zero -> true
  in
  List.for_all agree
    [
      (fun v -> match v with "x" -> 3 | "y" -> 5 | _ -> 7);
      (fun v -> match v with "x" -> 11 | "y" -> 13 | _ -> 17);
      (fun v -> match v with "x" -> 101 | "y" -> 7 | _ -> 29);
    ]

let prop_normal_form_sound =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:500 ~name:"normal-form equality is sound"
       QCheck2.Gen.(pair expr_gen expr_gen)
       (fun (e1, e2) ->
         if Nf.equivalent e1 e2 then eval_consistent e1 e2 else true))

let prop_self_equiv_under_rewrites =
  (* Applying random A_eq rewrites preserves the normal form. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"A_eq rewrites preserve normal form"
       ~print:E.to_string expr_gen
       (fun e ->
         let rewritten =
           (* A few standard rewrites applied at the root when possible. *)
           match e with
           | E.Add (a, b) -> E.add b a
           | E.Mul (a, b) -> E.mul b a
           | E.Div (E.Div (a, b), c) -> E.div a (E.mul b c)
           | E.Sum (i, E.Mul (a, b)) -> E.mul (E.sum i a) b
           | other -> other
         in
         Nf.equivalent e rewritten))

let prop_input_always_subexpr =
  (* The key lemma of Theorem 1: an operator's input is always a
     subexpression of its output. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"inputs are subexprs of outputs"
       ~print:(fun (a, b) -> E.to_string a ^ " | " ^ E.to_string b)
       QCheck2.Gen.(pair expr_gen expr_gen)
       (fun (a, b) ->
         Nf.subexpr a (E.add a b)
         && Nf.subexpr a (E.mul a b)
         && Nf.subexpr a (E.div a b)
         && Nf.subexpr b (E.div a b)
         && Nf.subexpr a (E.exp a)
         && Nf.subexpr a (E.sum 4 a)))

let prop_subexpr_transitive_via_context =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:200 ~name:"subexpr closed under wrapping"
       ~print:(fun (a, b, c) ->
         E.to_string a ^ " | " ^ E.to_string b ^ " | " ^ E.to_string c)
       QCheck2.Gen.(triple expr_gen expr_gen expr_gen)
       (fun (a, b, c) ->
         (* a <= a*b and a*b <= (a*b)/c imply a <= (a*b)/c *)
         Nf.subexpr a (E.div (E.mul a b) c)))

(* --- solver cache ------------------------------------------------------ *)

let test_solver_cache () =
  let goal = rmsnorm_fused ~h:64 ~iters:16 in
  let solver = Smtlite.Solver.create ~target:[ goal ] in
  Alcotest.(check bool) "accepts prefix" true
    (Smtlite.Solver.check_subexpr solver (E.mul x g));
  Alcotest.(check bool) "accepts prefix again" true
    (Smtlite.Solver.check_subexpr solver (E.mul g x));
  let st = Smtlite.Solver.stats solver in
  Alcotest.(check int) "2 queries" 2 st.Smtlite.Solver.queries;
  (* mul x g and mul g x normalize identically: second query hits cache. *)
  Alcotest.(check int) "1 hit" 1 st.Smtlite.Solver.cache_hits;
  Alcotest.(check bool) "rejects garbage" false
    (Smtlite.Solver.check_subexpr solver (E.exp x));
  Smtlite.Solver.reset_stats solver;
  Alcotest.(check int) "reset" 0 (Smtlite.Solver.stats solver).Smtlite.Solver.queries

let test_solver_equiv_target () =
  let goal = rmsnorm_spec ~h:64 in
  let solver = Smtlite.Solver.create ~target:[ goal ] in
  Alcotest.(check bool) "fused form is complete" true
    (Smtlite.Solver.check_equiv_target solver [ rmsnorm_fused ~h:64 ~iters:16 ]);
  Alcotest.(check bool) "prefix is not complete" false
    (Smtlite.Solver.check_equiv_target solver [ E.mul x g ])

let () =
  Alcotest.run "absexpr"
    [
      ( "a_eq",
        [
          Alcotest.test_case "AC laws" `Quick test_ac_laws;
          Alcotest.test_case "distributivity" `Quick test_distributivity;
          Alcotest.test_case "division laws" `Quick test_div_laws;
          Alcotest.test_case "sum laws" `Quick test_sum_laws;
          Alcotest.test_case "no cancellation" `Quick test_no_cancellation;
          Alcotest.test_case "reduction sizes matter" `Quick
            test_reduction_sizes_matter;
          Alcotest.test_case "exp opaque" `Quick test_exp_opaque;
          Alcotest.test_case "rmsnorm equivalence" `Quick
            test_rmsnorm_equivalence;
          Alcotest.test_case "rmsnorm wrong split" `Quick
            test_rmsnorm_wrong_split_rejected;
          prop_normal_form_sound;
          prop_self_equiv_under_rewrites;
        ] );
      ( "subexpr",
        [
          Alcotest.test_case "A_sub axioms" `Quick test_subexpr_axioms;
          Alcotest.test_case "transitivity" `Quick test_subexpr_transitive;
          Alcotest.test_case "modulo A_eq" `Quick test_subexpr_modulo_aeq;
          Alcotest.test_case "negative cases" `Quick test_subexpr_negative;
          Alcotest.test_case "rmsnorm prefixes kept" `Quick
            test_rmsnorm_prefixes_kept;
          prop_input_always_subexpr;
          prop_subexpr_transitive_via_context;
          Alcotest.test_case "div-by-quotient confluence" `Quick
            test_div_by_quotient_confluent;
          Alcotest.test_case "subexpr through quotients" `Quick
            test_subexpr_through_quotients;
          Alcotest.test_case "exact division" `Quick
            test_exact_division_in_subexpr;
          Alcotest.test_case "nf printing" `Quick test_nf_to_string_smoke;
        ] );
      ( "solver",
        [
          Alcotest.test_case "cache" `Quick test_solver_cache;
          Alcotest.test_case "equiv target" `Quick test_solver_equiv_target;
        ] );
    ]
