(* Tests for the muGraph optimizer (paper §6): operator scheduling,
   memory planning (dynamic storage allocation), and layout selection. *)

open Mugraph
open Baselines

let fused_rmsnorm () =
  match
    (Templates.rmsnorm_matmul_fused ~b:16 ~h:1024 ~d:4096 ~grid:128 ~iters:16)
      .Graph.knodes.(3)
      .Graph.kop
  with
  | Graph.K_graphdef bg -> bg
  | _ -> assert false

let rmsnorm_inputs : Tensor.Shape.t list =
  [ [| 16; 1024 |]; [| 1; 1024 |]; [| 1024; 4096 |] ]

(* --- scheduling --------------------------------------------------------- *)

let test_schedule_depths () =
  let bg = fused_rmsnorm () in
  let s = Opt.Schedule.block_schedule bg in
  (* initers at depth 0 *)
  Alcotest.(check int) "initer depth" 0 s.Opt.Schedule.depths.(0);
  (* div is the deepest computation *)
  let max_depth = Array.fold_left max 0 s.Opt.Schedule.depths in
  Alcotest.(check int) "div deepest" max_depth s.Opt.Schedule.depths.(10);
  (* the depth schedule needs fewer barriers than one-per-op *)
  Alcotest.(check bool) "saves syncthreads" true
    (s.Opt.Schedule.syncthreads < s.Opt.Schedule.naive_syncthreads);
  (* order is a permutation respecting depths *)
  Alcotest.(check int) "order size" (Array.length bg.Graph.bnodes)
    (List.length s.Opt.Schedule.order);
  let rec nondecreasing = function
    | a :: (b :: _ as rest) ->
        s.Opt.Schedule.depths.(a) <= s.Opt.Schedule.depths.(b)
        && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "ascending depths" true
    (nondecreasing s.Opt.Schedule.order)

let test_schedule_parallel_ops_share_level () =
  (* Mul(X,G) and Sqr(X) are independent: same depth, no barrier between *)
  let bg = fused_rmsnorm () in
  let s = Opt.Schedule.block_schedule bg in
  Alcotest.(check int) "mul and sqr same depth" s.Opt.Schedule.depths.(3)
    s.Opt.Schedule.depths.(6)

let test_total_syncthreads () =
  let g =
    Templates.rmsnorm_matmul_fused ~b:16 ~h:1024 ~d:4096 ~grid:128 ~iters:16
  in
  let total = Opt.Schedule.total_syncthreads g in
  Alcotest.(check bool) "scales with iterations" true (total >= 16)

(* --- memory planning ----------------------------------------------------- *)

let test_memplan_valid_and_packed () =
  let bg = fused_rmsnorm () in
  let plan = Opt.Memplan.plan_block ~elt_bytes:2 bg ~kernel_inputs:rmsnorm_inputs in
  Alcotest.(check bool) "no overlap of live tensors" true
    (Opt.Memplan.valid plan);
  Alcotest.(check bool) "packs below no-reuse peak" true
    (plan.Opt.Memplan.peak_bytes < Opt.Memplan.naive_peak plan);
  Alcotest.(check bool) "covers every smem tensor" true
    (List.length plan.Opt.Memplan.offsets
    = List.length plan.Opt.Memplan.tensors)

let test_memplan_lifetimes () =
  let bg = fused_rmsnorm () in
  let infos = Opt.Memplan.lifetimes ~elt_bytes:2 bg ~kernel_inputs:rmsnorm_inputs in
  (* accumulators persist across the whole loop *)
  let accum = List.find (fun t -> t.Opt.Memplan.node = 5) infos in
  let max_last =
    List.fold_left (fun acc t -> max acc t.Opt.Memplan.last) 0 infos
  in
  Alcotest.(check int) "accumulator lives to the end" max_last
    accum.Opt.Memplan.last

let test_memplan_exhaustive_small () =
  (* <= 8 tensors: the planner proves optimality *)
  let bg : Graph.block_graph =
    {
      Graph.grid = [| 2 |];
      forloop = [||];
      bnodes =
        [|
          { Graph.bop =
              Graph.B_initer
                { input = 0; imap = [| Dmap.Dim 0 |]; fmap = [||] };
            bins = [] };
          { Graph.bop = Graph.B_prim (Op.Unary Op.Sqr); bins = [ 0 ] };
          { Graph.bop = Graph.B_prim (Op.Unary Op.Sqr); bins = [ 1 ] };
          { Graph.bop = Graph.B_outsaver { omap = [| 0 |] }; bins = [ 2 ] };
        |];
    }
  in
  let plan =
    Opt.Memplan.plan_block ~elt_bytes:2 bg ~kernel_inputs:[ [| 4; 4 |] ]
  in
  Alcotest.(check bool) "optimal" true plan.Opt.Memplan.optimal;
  (* x dies when sqr1 is computed; sqr1 dies at sqr2: reuse is possible *)
  Alcotest.(check bool) "reuses space" true
    (plan.Opt.Memplan.peak_bytes < Opt.Memplan.naive_peak plan)

(* --- layout selection ----------------------------------------------------- *)

let test_layout_optimum_beats_naive () =
  let bg = fused_rmsnorm () in
  match Opt.Layout_opt.optimize_block bg ~kernel_inputs:rmsnorm_inputs with
  | Some a ->
      Alcotest.(check bool) "cost <= naive" true
        (a.Opt.Layout_opt.cost <= a.Opt.Layout_opt.naive_cost +. 1e-9);
      (* every shared-memory tensor got a layout *)
      Alcotest.(check bool) "nonempty assignment" true
        (List.length a.Opt.Layout_opt.layouts > 0)
  | None -> Alcotest.fail "layout ILP infeasible"

let test_layout_matmul_preference () =
  (* a lone matmul: the left operand should stay row-major and the right
     operand should go column-major (cuTLASS fragment preference) *)
  let bg : Graph.block_graph =
    {
      Graph.grid = [| 2 |];
      forloop = [||];
      bnodes =
        [|
          { Graph.bop =
              Graph.B_initer
                { input = 0; imap = [| Dmap.Dim 0 |]; fmap = [||] };
            bins = [] };
          { Graph.bop =
              Graph.B_initer
                { input = 1; imap = [| Dmap.Replica |]; fmap = [||] };
            bins = [] };
          { Graph.bop = Graph.B_prim Op.Matmul; bins = [ 0; 1 ] };
          { Graph.bop = Graph.B_outsaver { omap = [| 0 |] }; bins = [ 2 ] };
        |];
    }
  in
  match
    Opt.Layout_opt.optimize_block bg
      ~kernel_inputs:[ [| 8; 16 |]; [| 16; 8 |] ]
  with
  | Some a ->
      let layout_of i = List.assoc i a.Opt.Layout_opt.layouts in
      Alcotest.(check bool) "A row-major" true
        (Tensor.Layout.equal (layout_of 0) Tensor.Layout.Row_major);
      (* B: initer prefers row-major (bulk copy) but matmul prefers
         col-major; B is 16x8=128 elements vs A 4x16: the ILP weighs the
         larger penalty. Either way the choice must be optimal: *)
      Alcotest.(check bool) "optimal cost" true
        (a.Opt.Layout_opt.cost <= a.Opt.Layout_opt.naive_cost +. 1e-9)
  | None -> Alcotest.fail "infeasible"

let test_layout_elementwise_chain_consistent () =
  let bg : Graph.block_graph =
    {
      Graph.grid = [| 2 |];
      forloop = [||];
      bnodes =
        [|
          { Graph.bop =
              Graph.B_initer
                { input = 0; imap = [| Dmap.Dim 0 |]; fmap = [||] };
            bins = [] };
          { Graph.bop = Graph.B_prim (Op.Unary Op.Sqr); bins = [ 0 ] };
          { Graph.bop = Graph.B_prim (Op.Binary Op.Mul); bins = [ 0; 1 ] };
          { Graph.bop = Graph.B_outsaver { omap = [| 0 |] }; bins = [ 2 ] };
        |];
    }
  in
  match Opt.Layout_opt.optimize_block bg ~kernel_inputs:[ [| 8; 8 |] ] with
  | Some a ->
      let l i = List.assoc i a.Opt.Layout_opt.layouts in
      Alcotest.(check bool) "chain shares a layout" true
        (Tensor.Layout.equal (l 0) (l 1) && Tensor.Layout.equal (l 1) (l 2))
  | None -> Alcotest.fail "infeasible"

(* --- optimizer aggregation ------------------------------------------------ *)

let test_optimizer_report () =
  let g =
    Templates.rmsnorm_matmul_fused ~b:16 ~h:1024 ~d:4096 ~grid:128 ~iters:16
  in
  let r = Opt.Optimizer.optimize Gpusim.Device.a100 g in
  Alcotest.(check int) "one custom kernel" 1 (List.length r.Opt.Optimizer.kernels);
  Alcotest.(check bool) "fits device smem" true
    (Opt.Optimizer.fits Gpusim.Device.a100 r);
  Alcotest.(check bool) "summary mentions sync" true
    (Astring_contains.contains (Opt.Optimizer.summary r) "sync")

let () =
  Alcotest.run "opt"
    [
      ( "schedule",
        [
          Alcotest.test_case "depths" `Quick test_schedule_depths;
          Alcotest.test_case "parallel ops share level" `Quick
            test_schedule_parallel_ops_share_level;
          Alcotest.test_case "total syncs" `Quick test_total_syncthreads;
        ] );
      ( "memplan",
        [
          Alcotest.test_case "valid and packed" `Quick
            test_memplan_valid_and_packed;
          Alcotest.test_case "lifetimes" `Quick test_memplan_lifetimes;
          Alcotest.test_case "exhaustive optimal" `Quick
            test_memplan_exhaustive_small;
        ] );
      ( "layout",
        [
          Alcotest.test_case "beats naive" `Quick
            test_layout_optimum_beats_naive;
          Alcotest.test_case "matmul preference" `Quick
            test_layout_matmul_preference;
          Alcotest.test_case "elementwise chains" `Quick
            test_layout_elementwise_chain_consistent;
        ] );
      ( "optimizer",
        [ Alcotest.test_case "report" `Quick test_optimizer_report ] );
    ]
