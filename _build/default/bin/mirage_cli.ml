(* Command-line interface to the Mirage reproduction.

   Subcommands:
     optimize  — superoptimize a named benchmark's specification
     verify    — check a benchmark's Mirage plan against its spec
     inspect   — print a benchmark's plans, costs, and generated CUDA
     bench     — quick cost comparison across systems and devices
     list      — list available benchmarks *)

open Cmdliner

let device_conv =
  let parse s =
    match Gpusim.Device.by_name s with
    | Some d -> Ok d
    | None -> Error (`Msg (Printf.sprintf "unknown device %S (a100|h100)" s))
  in
  Arg.conv (parse, fun fmt d -> Format.fprintf fmt "%s" d.Gpusim.Device.name)

let device_arg =
  Arg.(
    value
    & opt device_conv Gpusim.Device.a100
    & info [ "device"; "d" ] ~docv:"DEV" ~doc:"Target GPU model (a100 or h100).")

let bench_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"BENCHMARK"
        ~doc:"Benchmark name: gqa, qknorm, rmsnorm, lora, gatedmlp, ntrans.")

let lookup name =
  match Workloads.Bench_defs.by_name name with
  | Some b -> b
  | None ->
      Printf.eprintf "unknown benchmark %S\n" name;
      exit 2

let list_cmd =
  let run () =
    List.iter
      (fun (b : Workloads.Bench_defs.benchmark) ->
        Printf.printf "%-10s %-32s (%s)\n" b.name b.description b.base_arch)
      (Workloads.Bench_defs.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List available benchmarks")
    Term.(const run $ const ())

let verify_cmd =
  let run name =
    let b = lookup name in
    let spec, plan = b.Workloads.Bench_defs.reduced () in
    Printf.printf "verifying %s Mirage plan against its specification\n"
      b.Workloads.Bench_defs.name;
    let r = Verify.Random_test.equivalent ~trials:3 ~spec plan in
    Printf.printf "result: %s\n" (Verify.Random_test.to_string r);
    match r with Verify.Random_test.Equivalent -> () | _ -> exit 1
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Probabilistically verify a benchmark's Mirage plan (reduced dims)")
    Term.(const run $ bench_arg)

let inspect_cmd =
  let run name device =
    let b = lookup name in
    let cost g = (Gpusim.Cost.cost device g).Gpusim.Cost.total_us in
    Printf.printf "== %s (%s) on %s\n" b.Workloads.Bench_defs.name
      b.Workloads.Bench_defs.base_arch device.Gpusim.Device.name;
    Printf.printf "-- specification:\n%s\n"
      (Mugraph.Pretty.kernel_graph_to_string b.Workloads.Bench_defs.spec);
    Printf.printf "-- Mirage muGraph (%.2f us):\n%s\n"
      (cost b.Workloads.Bench_defs.mirage)
      (Mugraph.Pretty.kernel_graph_to_string b.Workloads.Bench_defs.mirage);
    Printf.printf "-- optimizer report:\n%s\n"
      (Opt.Optimizer.summary
         (Opt.Optimizer.optimize device b.Workloads.Bench_defs.mirage));
    Printf.printf "-- generated CUDA:\n%s\n"
      (Codegen.Cuda_emit.emit_kernel
         ~name:(String.lowercase_ascii b.Workloads.Bench_defs.name)
         b.Workloads.Bench_defs.mirage)
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Print plans, costs and generated code")
    Term.(const run $ bench_arg $ device_arg)

let bench_cmd =
  let run device =
    List.iter
      (fun (b : Workloads.Bench_defs.benchmark) ->
        let cost g = (Gpusim.Cost.cost device g).Gpusim.Cost.total_us in
        let mi = cost b.mirage in
        Printf.printf "%-10s Mirage %8.2f us |" b.name mi;
        List.iter
          (fun (n, g) -> Printf.printf " %s %.2f (%.2fx)" n (cost g) (cost g /. mi))
          b.systems;
        print_newline ())
      (Workloads.Bench_defs.all ())
  in
  Cmd.v (Cmd.info "bench" ~doc:"Cost all benchmarks on a device")
    Term.(const run $ device_arg)

let optimize_cmd =
  let ops_arg =
    Arg.(
      value & opt int 8
      & info [ "max-block-ops" ] ~docv:"N"
          ~doc:"Maximum operators per block graph during the search.")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers"; "j" ] ~docv:"N" ~doc:"Search worker domains.")
  in
  let budget_arg =
    Arg.(
      value & opt float 120.0
      & info [ "budget" ] ~docv:"SECONDS" ~doc:"Search time budget.")
  in
  let run name device max_ops workers budget =
    let b = lookup name in
    (* Superoptimize the reduced-dimension specification: the search is
       exhaustive and the discovered structure is dimension-uniform. *)
    let spec, _ = b.Workloads.Bench_defs.reduced () in
    let base =
      {
        Search.Config.default with
        Search.Config.max_block_ops = max_ops;
        num_workers = workers;
        time_budget_s = budget;
      }
    in
    let config = Search.Config.for_spec ~base spec in
    let report = Mirage.superoptimize ~config ~device spec in
    print_string (Mirage.summary report);
    List.iter
      (fun (pr : Mirage.piece_result) ->
        match pr.Mirage.outcome with
        | Some o ->
            Printf.printf "piece %d search: %s\n" pr.piece.Mirage.Partition.id
              (Search.Stats.to_string o.Search.Generator.stats);
            Printf.printf "best muGraph:\n%s\n"
              (Mugraph.Pretty.kernel_graph_to_string pr.Mirage.best)
        | None -> ())
      report.Mirage.pieces
  in
  Cmd.v
    (Cmd.info "optimize"
       ~doc:"Run the full superoptimizer on a benchmark (reduced dims)")
    Term.(const run $ bench_arg $ device_arg $ ops_arg $ workers_arg $ budget_arg)

let emit_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "output"; "o" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let run name out =
    let b = lookup name in
    let cuda =
      Codegen.Cuda_emit.emit_kernel
        ~name:(String.lowercase_ascii b.Workloads.Bench_defs.name)
        b.Workloads.Bench_defs.mirage
    in
    match out with
    | None -> print_string cuda
    | Some path ->
        let oc = open_out path in
        output_string oc cuda;
        close_out oc;
        Printf.printf "wrote %d lines to %s\n" (Codegen.Cuda_emit.loc cuda)
          path
  in
  Cmd.v
    (Cmd.info "emit" ~doc:"Emit the CUDA for a benchmark's Mirage muGraph")
    Term.(const run $ bench_arg $ out_arg)

let symverify_cmd =
  let run name =
    let b = lookup name in
    let spec, plan = b.Workloads.Bench_defs.reduced () in
    Printf.printf
      "exact symbolic verification of the %s Mirage plan (reduced dims)\n"
      b.Workloads.Bench_defs.name;
    let r = Verify.Symbolic.equivalent ~spec plan in
    Printf.printf "result: %s\n" (Verify.Symbolic.to_string r);
    match r with Verify.Symbolic.Equivalent -> () | _ -> exit 1
  in
  Cmd.v
    (Cmd.info "symverify"
       ~doc:
         "Prove a benchmark's Mirage plan equivalent with the exact \
          symbolic verifier (paper §7's solver-based path)")
    Term.(const run $ bench_arg)

let () =
  let info =
    Cmd.info "mirage-cli" ~version:"1.0.0"
      ~doc:"Mirage multi-level tensor-program superoptimizer (reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            verify_cmd;
            symverify_cmd;
            inspect_cmd;
            bench_cmd;
            optimize_cmd;
            emit_cmd;
          ]))
