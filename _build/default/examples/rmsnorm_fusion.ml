(* The §3 case study at paper dimensions: RMSNorm + MatMul on
   LLaMA-2-7B-like shapes (Fig. 4).

   Shows: the two-kernel plan existing systems execute, the fused muGraph
   Mirage discovers (Fig. 4b), the probabilistic verification of the
   fused plan at reduced dims, the cost-model comparison on A100 and
   H100, and the paper-reported speedups for reference.

     dune exec examples/rmsnorm_fusion.exe *)

open Baselines

let () =
  let b, h, d = (16, 1024, 4096) in
  let unfused = Templates.rmsnorm_matmul_unfused ~b ~h ~d in
  let fused = Templates.rmsnorm_matmul_fused ~b ~h ~d ~grid:128 ~iters:16 in

  Printf.printf "Fig. 4b muGraph (grid 128, 16 for-loop iterations):\n%s\n"
    (Mugraph.Pretty.kernel_graph_to_string fused);

  (* Verification at reduced dims (the muGraph structure is the same). *)
  let spec_small = Templates.rmsnorm_matmul_spec ~b:4 ~h:8 ~d:16 in
  let fused_small =
    Templates.rmsnorm_matmul_fused ~b:4 ~h:8 ~d:16 ~grid:2 ~iters:2
  in
  Printf.printf "probabilistic verification (p=227, q=113, 3 trials): %s\n\n"
    (Verify.Random_test.to_string
       (Verify.Random_test.equivalent ~trials:3 ~spec:spec_small fused_small));

  List.iter
    (fun dev ->
      let c g = (Gpusim.Cost.cost dev g).Gpusim.Cost.total_us in
      let cu = c unfused and cf = c fused in
      Printf.printf
        "%s: two-kernel plan %.2f us, fused muGraph %.2f us -> %.2fx (paper: \
         1.9x A100 / 1.6x H100)\n"
        dev.Gpusim.Device.name cu cf (cu /. cf))
    [ Gpusim.Device.a100; Gpusim.Device.h100 ];

  (* The §6 post-verification optimizations on the fused kernel. *)
  print_newline ();
  print_string
    (Opt.Optimizer.summary (Opt.Optimizer.optimize Gpusim.Device.a100 fused))
