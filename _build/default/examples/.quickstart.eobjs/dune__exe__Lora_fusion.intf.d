examples/lora_fusion.mli:
