examples/quickstart.ml: Codegen Dense Element Gpusim Graph Interp List Mirage Mugraph Op Pretty Printf Random Search Tensor
