examples/attention_search.ml: Baselines Float Gpusim List Printf Templates Verify
