examples/rmsnorm_fusion.mli:
