examples/quickstart.mli:
