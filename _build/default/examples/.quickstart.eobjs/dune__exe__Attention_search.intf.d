examples/attention_search.mli:
