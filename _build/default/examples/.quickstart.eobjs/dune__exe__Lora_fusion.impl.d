examples/lora_fusion.ml: Absexpr Abstract Baselines Gpusim Graph List Mugraph Op Pretty Printf Templates Verify
