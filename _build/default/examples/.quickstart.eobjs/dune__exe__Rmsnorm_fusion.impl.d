examples/rmsnorm_fusion.ml: Baselines Gpusim List Mugraph Opt Printf Templates Verify
