examples/gated_mlp.ml: Baselines Gpusim List Mugraph Printf Search Templates Verify
