examples/gated_mlp.mli:
