examples/end_to_end.ml: Gpusim List Printf Workloads
