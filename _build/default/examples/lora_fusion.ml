(* LoRA (paper §8.2, Fig. 9): O = W×X + B×A×X with low-rank A, B.

   Existing optimizers launch four kernels (three matmuls + add); the
   LoRA matmuls are tiny, so kernel launch overhead dominates. Mirage
   fuses everything into one custom kernel using the algebraic identity
     W×X + B×(A×X) = (W ‖ B) × (X ‖ (A×X))
   — realized here by accumulating W×X and A×X in the for-loop and
   applying the rank-r correction in the epilogue.

   Also demonstrates the §8.1 ConcatMatmul operator added for this
   benchmark, with its custom abstract expression.

     dune exec examples/lora_fusion.exe *)

open Mugraph
open Baselines

let () =
  let m, k, r, n = (4096, 4096, 16, 16) in
  let unfused = Templates.lora_unfused ~m ~k ~r ~n in
  let fused = Templates.lora_fused ~m ~k ~r ~n ~grid:128 ~iters:16 in

  Printf.printf "Fig. 9b muGraph:\n%s\n" (Pretty.kernel_graph_to_string fused);

  (* The four-input concat-matmul operator of §8.1: its functional
     semantics and abstract expression. *)
  let bld = Graph.Build.create () in
  let w = Graph.Build.input bld "W" [| 8; 4 |] in
  let x = Graph.Build.input bld "X" [| 8; 2 |] in
  let y = Graph.Build.input bld "Y" [| 4; 3 |] in
  let z = Graph.Build.input bld "Z" [| 2; 3 |] in
  let o = Graph.Build.prim bld Op.Concat_matmul [ w; x; y; z ] in
  let cm = Graph.Build.finish bld ~outputs:[ o ] in
  Printf.printf "ConcatMatmul abstract expression:\n  %s\n\n"
    (Absexpr.Expr.to_string (List.hd (Abstract.output_exprs cm)));

  (* equivalence of (W||X)x(Y||Z) with WxY + XxZ, checked by the
     probabilistic verifier *)
  let bld = Graph.Build.create () in
  let w = Graph.Build.input bld "W" [| 8; 4 |] in
  let x = Graph.Build.input bld "X" [| 8; 2 |] in
  let y = Graph.Build.input bld "Y" [| 4; 3 |] in
  let z = Graph.Build.input bld "Z" [| 2; 3 |] in
  let wy = Graph.Build.prim bld Op.Matmul [ w; y ] in
  let xz = Graph.Build.prim bld Op.Matmul [ x; z ] in
  let s = Graph.Build.prim bld (Op.Binary Op.Add) [ wy; xz ] in
  let sum_form = Graph.Build.finish bld ~outputs:[ s ] in
  Printf.printf "ConcatMatmul = WxY + XxZ: %s\n\n"
    (Verify.Random_test.to_string
       (Verify.Random_test.equivalent ~trials:3 ~spec:sum_form cm));

  (* verification of the fused LoRA plan (reduced dims) *)
  Printf.printf "fused LoRA plan: %s\n\n"
    (Verify.Random_test.to_string
       (Verify.Random_test.equivalent ~trials:3
          ~spec:(Templates.lora_spec ~m:32 ~k:16 ~r:4 ~n:8)
          (Templates.lora_fused ~m:32 ~k:16 ~r:4 ~n:8 ~grid:4 ~iters:2)));

  List.iter
    (fun dev ->
      let c g = (Gpusim.Cost.cost dev g).Gpusim.Cost.total_us in
      Printf.printf
        "%s: four kernels %.2f us, fused %.2f us -> %.2fx (paper: 1.7-1.8x)\n"
        dev.Gpusim.Device.name (c unfused) (c fused)
        (c unfused /. c fused))
    [ Gpusim.Device.a100; Gpusim.Device.h100 ]
