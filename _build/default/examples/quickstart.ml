(* Quickstart: build a tensor program, run it, superoptimize it.

   The program is the paper's §3 running example — RMSNorm followed by a
   linear layer — at toy dimensions so that the full pipeline (search,
   finite-field verification, cost model, code generation) completes in a
   few seconds.

     dune exec examples/quickstart.exe *)

open Mugraph
open Tensor

let () =
  (* 1. Describe the computation as a kernel graph (the "algorithm"):
        a row-normalized linear layer, Z = (X / C) x W. Deliberately
        small so the exhaustive search finishes in seconds on one core;
        the full §3 RMSNorm case study is examples/rmsnorm_fusion.exe
        and `bench/main.exe casestudy rmsnorm`. *)
  let b, h, d = (4, 8, 16) in
  let bld = Graph.Build.create () in
  let x = Graph.Build.input bld "X" [| b; h |] in
  let c = Graph.Build.input bld "C" [| b; 1 |] in
  let w = Graph.Build.input bld "W" [| h; d |] in
  let y = Graph.Build.prim bld (Op.Binary Op.Div) [ x; c ] in
  let z = Graph.Build.prim bld Op.Matmul [ y; w ] in
  let program = Graph.Build.finish bld ~outputs:[ z ] in
  Printf.printf "Input program:\n%s\n\n" (Pretty.kernel_graph_to_string program);

  (* 2. Run it on real numbers with the reference interpreter. *)
  let st = Random.State.make [| 42 |] in
  let rand shape = Dense.init shape (fun _ -> 0.5 +. Random.State.float st 1.0) in
  let inputs = [ rand [| b; h |]; rand [| b; 1 |]; rand [| h; d |] ] in
  let outputs = Interp.eval_kernel Element.float_ops program ~inputs in
  Printf.printf "Z[0,0] = %g\n\n" (Dense.get (List.hd outputs) [| 0; 0 |]);

  (* 3. Superoptimize: search muGraphs (the fused kernel needs the
        division to commute with the matmul — an algebraic transformation
        — plus accumulation scheduling), verify candidates over finite
        fields, pick the cheapest under the A100 cost model. *)
  let config =
    Search.Config.for_spec
      ~base:
        {
          Search.Config.default with
          Search.Config.grid_candidates = [ [| 2 |] ];
          forloop_candidates = [ [| 2 |] ];
          max_block_ops = 4;
          num_workers = 1;
          time_budget_s = 60.0;
        }
      program
  in
  let report =
    Mirage.superoptimize ~config ~device:Gpusim.Device.a100 program
  in
  print_string (Mirage.summary report);

  (* 4. Inspect the best muGraph and the CUDA Mirage would generate. *)
  match report.Mirage.pieces with
  | [ piece ] ->
      Printf.printf "\nBest muGraph:\n%s\n"
        (Pretty.kernel_graph_to_string piece.Mirage.best);
      (* The optimized muGraph computes the same function: *)
      let opt_out =
        Interp.eval_kernel Element.float_ops piece.Mirage.best ~inputs
      in
      let close =
        Dense.equal
          (fun a b -> Element.float_approx_equal ~rtol:1e-6 a b)
          (List.hd outputs) (List.hd opt_out)
      in
      Printf.printf "outputs agree with the input program: %b\n\n" close;
      print_string
        (Codegen.Cuda_emit.emit_kernel ~name:"quickstart" piece.Mirage.best)
  | _ -> ()
