(* End-to-end inference (paper Fig. 11): four models executed as stacks
   of Transformer layers, comparing the PyTorch plan against the same
   plan with Mirage-generated kernels substituted for the LAX pieces.

     dune exec examples/end_to_end.exe *)

let () =
  print_endline
    "End-to-end decode latency (simulated), PyTorch vs PyTorch+Mirage";
  print_endline "(paper Fig. 11 reports 1.1-1.9x)\n";
  List.iter
    (fun dev ->
      Printf.printf "=== %s\n" dev.Gpusim.Device.name;
      List.iter
        (fun m ->
          let base = Workloads.Models.latency_us dev m ~optimized:false in
          let opti = Workloads.Models.latency_us dev m ~optimized:true in
          Printf.printf "  %-14s %9.0f us -> %9.0f us  (%.2fx, %d layers)\n"
            m.Workloads.Models.name base opti (base /. opti)
            m.Workloads.Models.num_layers;
          (* per-component breakdown *)
          List.iter
            (fun c ->
              let cb =
                (Gpusim.Cost.cost dev c.Workloads.Models.baseline)
                  .Gpusim.Cost.total_us
              in
              let co =
                (Gpusim.Cost.cost dev c.Workloads.Models.optimized)
                  .Gpusim.Cost.total_us
              in
              Printf.printf "      %-18s %8.2f -> %8.2f us%s\n"
                c.Workloads.Models.label cb co
                (if cb = co then "  (unchanged)" else ""))
            m.Workloads.Models.layer)
        (Workloads.Models.all ());
      print_newline ())
    [ Gpusim.Device.a100; Gpusim.Device.h100 ]
