(* Gated MLP (paper §8.2, Fig. 10): O = SiLU(X×W1) ∘ (X×W2).

   Existing optimizers at best fuse the two matmuls (X loaded once) but
   run SiLU/Mul as a separate elementwise kernel, storing both matmul
   outputs in device memory. Mirage's muGraph runs both matmuls in the
   same block graph accumulating over the hidden dimension and applies
   SiLU∘Mul as the epilogue — one kernel, no intermediate round-trips.

     dune exec examples/gated_mlp.exe *)

open Baselines

let () =
  let b, h, f = (16, 1024, 4096) in
  let plans =
    [
      ("PyTorch (4 kernels)", Templates.gated_mlp_unfused ~b ~h ~f);
      ("fused matmuls + ew kernel", Templates.gated_mlp_two_kernel ~b ~h ~f);
      ("Mirage (Fig. 10b)", Templates.gated_mlp_fused ~b ~h ~f ~grid:128 ~iters:16);
    ]
  in
  Printf.printf "Mirage muGraph:\n%s\n"
    (Mugraph.Pretty.kernel_graph_to_string
       (Templates.gated_mlp_fused ~b ~h ~f ~grid:128 ~iters:16));

  Printf.printf "verification (reduced dims): %s\n\n"
    (Verify.Random_test.to_string
       (Verify.Random_test.equivalent ~trials:3
          ~spec:(Templates.gated_mlp_spec ~b:4 ~h:16 ~f:32)
          (Templates.gated_mlp_fused ~b:4 ~h:16 ~f:32 ~grid:4 ~iters:2)));

  List.iter
    (fun dev ->
      Printf.printf "=== %s (paper: 1.4-1.5x A100, 2.7-2.9x H100)\n"
        dev.Gpusim.Device.name;
      let mirage =
        (Gpusim.Cost.cost dev
           (Templates.gated_mlp_fused ~b ~h ~f ~grid:128 ~iters:16))
          .Gpusim.Cost.total_us
      in
      List.iter
        (fun (name, g) ->
          let c = (Gpusim.Cost.cost dev g).Gpusim.Cost.total_us in
          Printf.printf "  %-28s %8.2f us (%.2fx vs Mirage)\n" name c
            (c /. mirage))
        plans)
    [ Gpusim.Device.a100; Gpusim.Device.h100 ];

  (* the thread-fusion pass puts the SiLU∘Mul epilogue into registers *)
  let fused =
    Search.Thread_fuse.fuse_kernel
      (Templates.gated_mlp_fused ~b ~h ~f ~grid:128 ~iters:16)
  in
  Printf.printf "\nafter thread fusion (%d ops in thread graphs):\n%s\n"
    (Search.Thread_fuse.fused_op_count fused)
    (Mugraph.Pretty.kernel_graph_to_string fused)
