(* Group-query attention (paper §8.2): how the choice of grid dimensions
   and KV partitioning changes both SM utilization and device-memory
   traffic.

   Compares, for LLaMA-3-70B decode attention (per-GPU shard under
   4-way tensor parallelism):
   - the unfused matmul/softmax/matmul plan (PyTorch),
   - the heads-parallel fused kernel (TensorRT-LLM / FlashAttention),
   - split-KV with one query head per block (FlashDecoding),
   - Mirage's discovery: split-KV with the whole query group per block,
     which loads each K/V tile once (up to ~7x less DRAM traffic at
     batch 8).

     dune exec examples/attention_search.exe *)

open Baselines

let plans ~b =
  let gk = 2 and grp = 8 and s = 4096 and dh = 128 in
  [
    ("PyTorch (unfused)", Templates.attention_unfused ~b ~gk ~grp ~s ~dh);
    ( "TensorRT-LLM (heads grid)",
      Templates.attention_fused_heads ~b ~gk ~grp ~s ~dh );
    ( "FlashDecoding (split 4/head)",
      Templates.attention_fused_split_kv ~b ~gk ~grp ~s ~dh ~split:4
        ~group_in_block:false );
    ( "Mirage (group-in-block)",
      Templates.attention_fused_split_kv ~b ~gk ~grp ~s ~dh
        ~split:(if b = 1 then 64 else 8)
        ~group_in_block:true );
  ]

let () =
  (* correctness first: all fused variants are verified equivalent *)
  let spec = Templates.attention_spec ~b:2 ~gk:2 ~grp:4 ~s:128 ~dh:8 in
  List.iter
    (fun (name, g) ->
      Printf.printf "%-30s %s\n" name
        (Verify.Random_test.to_string
           (Verify.Random_test.equivalent ~trials:2 ~spec g)))
    [
      ("unfused", Templates.attention_unfused ~b:2 ~gk:2 ~grp:4 ~s:128 ~dh:8);
      ( "heads-parallel",
        Templates.attention_fused_heads ~b:2 ~gk:2 ~grp:4 ~s:128 ~dh:8 );
      ( "split-KV per head",
        Templates.attention_fused_split_kv ~b:2 ~gk:2 ~grp:4 ~s:128 ~dh:8
          ~split:2 ~group_in_block:false );
      ( "split-KV group-in-block",
        Templates.attention_fused_split_kv ~b:2 ~gk:2 ~grp:4 ~s:128 ~dh:8
          ~split:2 ~group_in_block:true );
    ];
  print_newline ();
  List.iter
    (fun b ->
      List.iter
        (fun dev ->
          Printf.printf "=== batch %d on %s\n" b dev.Gpusim.Device.name;
          let best = ref infinity in
          List.iter
            (fun (name, g) ->
              let c = Gpusim.Cost.cost dev g in
              best := Float.min !best c.Gpusim.Cost.total_us;
              Printf.printf "  %-30s %8.2f us  %7.2f MB DRAM\n" name
                c.Gpusim.Cost.total_us
                (c.Gpusim.Cost.total_dram_bytes /. 1.0e6))
            (plans ~b);
          print_newline ())
        [ Gpusim.Device.a100; Gpusim.Device.h100 ])
    [ 1; 8 ]
