#!/usr/bin/env bash
# Artifact-evaluation style reproduction script: builds everything, runs
# the full test suite, regenerates every table/figure of the paper's
# evaluation, and leaves transcripts in ./artifacts/.
#
#   ./scripts/repro.sh          # everything except the slow sweeps
#   ./scripts/repro.sh --full   # adds table5 --full and all case studies
set -euo pipefail
cd "$(dirname "$0")/.."

FULL=0
[[ "${1:-}" == "--full" ]] && FULL=1

mkdir -p artifacts

echo "== build"
dune build @all 2>&1 | tee artifacts/build.log

echo "== tests"
dune runtest --force --no-buffer 2>&1 | tee artifacts/tests.log

echo "== benchmarks (Fig 7, Fig 11, GQA sweep, ablations, Table 5 fast, micro)"
dune exec bench/main.exe 2>&1 | tee artifacts/bench.log

echo "== case study: RMSNorm (Fig 4b discovery)"
dune exec bench/main.exe -- casestudy rmsnorm 2>&1 | tee artifacts/casestudy_rmsnorm.log

if [[ "$FULL" == 1 ]]; then
  echo "== Table 5 (full sweep, slow)"
  dune exec bench/main.exe -- table5 --full 2>&1 | tee artifacts/table5_full.log
  for b in qknorm lora gatedmlp ntrans gqa; do
    echo "== case study: $b"
    dune exec bench/main.exe -- casestudy "$b" 2>&1 | tee "artifacts/casestudy_$b.log"
  done
fi

echo "== examples"
for ex in quickstart rmsnorm_fusion attention_search lora_fusion gated_mlp end_to_end; do
  echo "-- examples/$ex"
  dune exec "examples/$ex.exe" 2>&1 | tee "artifacts/example_$ex.log"
done

echo
echo "done; transcripts in ./artifacts/"
