#!/usr/bin/env bash
# Tier-1 CI: build everything, run the test suites, then smoke-test the
# observability surface — the stats funnel, a Chrome trace, a full run
# report (report.json + trace.json + journal.jsonl), candidate forensics
# via `explain`, and the bench-history regression gate — and check that
# every JSON artifact we produce actually parses.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== smoke: mirage_cli stats (funnel invariant is checked in-process)"
dune exec bin/mirage_cli.exe -- stats rmsnorm \
  --budget 10 --workers 2 --trace /tmp/mirage_ci_trace.json

echo "== smoke: mirage_cli optimize --report (self-contained run dir)"
rm -rf /tmp/mirage_ci_run
dune exec bin/mirage_cli.exe -- optimize rmsnorm \
  --budget 2 --workers 2 --report /tmp/mirage_ci_run >/dev/null

echo "== smoke: explain resolves a journaled candidate"
dune exec bin/mirage_cli.exe -- explain /tmp/mirage_ci_run 0 >/dev/null

echo "== smoke: profile analyzer attributes the run's search wall time"
dune exec bin/mirage_cli.exe -- profile /tmp/mirage_ci_run \
  --min-coverage 0.95 >/dev/null

echo "== smoke: bench --json"
dune exec bench/main.exe -- fig7 --json /tmp/mirage_ci_bench.json >/dev/null

echo "== validate JSON artifacts (journal is checked line by line)"
dune exec tools/json_check.exe -- \
  /tmp/mirage_ci_trace.json /tmp/mirage_ci_bench.json \
  /tmp/mirage_ci_run/report.json /tmp/mirage_ci_run/trace.json \
  /tmp/mirage_ci_run/journal.jsonl

echo "== codegen smoke: runnable backend differential (chaos off)"
# The generated C for the rmsnorm and gated-MLP winners must compile
# with the system cc and agree with the muGraph interpreter to 1e-4 on
# random inputs; run-winner replays the winning muGraph persisted in
# the optimize --report run dir above. Skipped (loudly) when the host
# has no working C compiler — everything else in CI still runs.
if cc -xc -o /tmp/mirage_ci_ccprobe - <<<'int main(void){return 0;}' \
    >/dev/null 2>&1 && /tmp/mirage_ci_ccprobe; then
  dune exec bin/mirage_cli.exe -- verify rmsnorm --differential
  dune exec bin/mirage_cli.exe -- verify gatedmlp --differential
  dune exec bin/mirage_cli.exe -- run-winner /tmp/mirage_ci_run
else
  echo "*** SKIPPING codegen smoke: no working C compiler (cc) on this host ***"
fi

echo "== chaos smoke: enumerator crashes are quarantined, run still lands"
rm -rf /tmp/mirage_ci_chaos1
MIRAGE_FAULT="enum.block:1.0:2" dune exec bin/mirage_cli.exe -- \
  optimize rmsnorm --budget 2 --workers 2 \
  --report /tmp/mirage_ci_chaos1 >/dev/null
grep -q '"state": "\(ok\|degraded\)"' /tmp/mirage_ci_chaos1/report.json

echo "== chaos smoke: journal write failure degrades, never crashes"
rm -rf /tmp/mirage_ci_chaos2
MIRAGE_FAULT="journal.write:1.0:1" dune exec bin/mirage_cli.exe -- \
  optimize rmsnorm --budget 2 --workers 2 \
  --report /tmp/mirage_ci_chaos2 >/dev/null
grep -q '"state": "\(ok\|degraded\)"' /tmp/mirage_ci_chaos2/report.json

echo "== validate chaos artifacts (journals must have no torn lines)"
dune exec tools/json_check.exe -- \
  /tmp/mirage_ci_chaos1/report.json /tmp/mirage_ci_chaos1/journal.jsonl \
  /tmp/mirage_ci_chaos2/report.json /tmp/mirage_ci_chaos2/journal.jsonl

echo "== chaos smoke: prune-cache write failure degrades to memory-only"
# The solver's write-behind prune cache flushes through Service.Cache;
# an injected ENOSPC on the first flush must drop the run to memory-only
# persistence (no disk envelope) without losing the search result.
rm -rf /tmp/mirage_ci_chaos3 /tmp/mirage_ci_chaos3_pc
MIRAGE_FAULT="cache.enospc:1.0:1" dune exec bin/mirage_cli.exe -- \
  optimize rmsnorm --budget 2 --workers 2 \
  --prune-cache /tmp/mirage_ci_chaos3_pc \
  --report /tmp/mirage_ci_chaos3 >/dev/null
grep -q '"state": "\(ok\|degraded\)"' /tmp/mirage_ci_chaos3/report.json
# unfaulted rerun over the same dir persists and then answers from disk
dune exec bin/mirage_cli.exe -- optimize rmsnorm --budget 2 --workers 2 \
  --prune-cache /tmp/mirage_ci_chaos3_pc >/dev/null
dune exec bin/mirage_cli.exe -- optimize rmsnorm --budget 2 --workers 2 \
  --prune-cache /tmp/mirage_ci_chaos3_pc \
  --report /tmp/mirage_ci_chaos3_warm >/dev/null
grep -q '"disk_hits": [1-9]' /tmp/mirage_ci_chaos3_warm/report.json
dune exec tools/json_check.exe -- /tmp/mirage_ci_chaos3/report.json \
  /tmp/mirage_ci_chaos3_warm/report.json

echo "== resume smoke: kill-and-resume lands in the same run dir"
rm -rf /tmp/mirage_ci_resume
dune exec bin/mirage_cli.exe -- optimize rmsnorm \
  --budget 1 --workers 2 --report /tmp/mirage_ci_resume >/dev/null
test -f /tmp/mirage_ci_resume/checkpoint.json
dune exec bin/mirage_cli.exe -- optimize rmsnorm \
  --budget 10 --workers 2 --resume /tmp/mirage_ci_resume >/dev/null
grep -q '"state": "\(ok\|degraded\)"' /tmp/mirage_ci_resume/report.json
dune exec tools/json_check.exe -- /tmp/mirage_ci_resume/checkpoint.json

echo "== service smoke: daemon, coalesced identical requests, cache hit"
rm -rf /tmp/mirage_ci_svc
mkdir -p /tmp/mirage_ci_svc
CLI=./_build/default/bin/mirage_cli.exe
REQ="--socket /tmp/mirage_ci_svc/s.sock --max-block-ops 3 --workers 1 --budget 10"
$CLI serve --socket /tmp/mirage_ci_svc/s.sock \
  --cache-dir /tmp/mirage_ci_svc/cache --max-block-ops 3 --workers 1 \
  --budget 10 --journal /tmp/mirage_ci_svc/journal.jsonl \
  --slow-threshold 0 --slow-dir /tmp/mirage_ci_svc/slow \
  > /tmp/mirage_ci_svc/serve.log 2>&1 &
SVC_PID=$!
for _ in $(seq 1 50); do
  $CLI request status $REQ >/dev/null 2>&1 && break
  sleep 0.2
done
# two identical requests in flight at once -> single-flight: one search
$CLI request rmsnorm $REQ > /tmp/mirage_ci_svc/r1.json &
R1=$!
$CLI request rmsnorm $REQ > /tmp/mirage_ci_svc/r2.json &
R2=$!
# scrape the metrics exposition mid-load (the client validates the
# snapshot against the schema and exits nonzero on a malformed one)
$CLI request metrics $REQ > /tmp/mirage_ci_svc/metrics_midload.json
wait "$R1" "$R2"
# both answered from the same search (same fingerprint, one search.start)
FP1=$(grep -o '"fingerprint": "[0-9a-f]*"' /tmp/mirage_ci_svc/r1.json | head -1)
FP2=$(grep -o '"fingerprint": "[0-9a-f]*"' /tmp/mirage_ci_svc/r2.json | head -1)
test -n "$FP1" && test "$FP1" = "$FP2"
$CLI request status $REQ | grep -q '"searches": 1'
# a third identical request is a pure cache hit
$CLI request rmsnorm $REQ | grep -q '"cached": true'
# the outcome counters agree with the request pattern: one search miss,
# and the other two optimize requests either coalesced or hit the cache.
# Samples fold into the registry just after the response goes out, so a
# scrape racing the last response can trail it by one — retry briefly.
for _ in $(seq 1 25); do
  $CLI request metrics $REQ > /tmp/mirage_ci_svc/metrics.json
  HIT=$(grep -o '"hit": [0-9]*' /tmp/mirage_ci_svc/metrics.json | head -1 | grep -o '[0-9]*')
  COAL=$(grep -o '"coalesced": [0-9]*' /tmp/mirage_ci_svc/metrics.json | head -1 | grep -o '[0-9]*')
  [ "$(( ${HIT:-0} + ${COAL:-0} ))" -eq 2 ] && break
  sleep 0.2
done
grep -q '"miss": 1' /tmp/mirage_ci_svc/metrics.json
test "$((HIT + COAL))" -eq 2
# the prometheus text rendering and the live status view both answer
$CLI request metrics $REQ --prometheus | grep -q '^serve_total'
$CLI status --socket /tmp/mirage_ci_svc/s.sock | grep -q 'uptime'
# a cold search with --progress streams at least one rid-tagged frame
# (distinct fingerprint via --max-block-ops 2 so the cache can't answer;
# stderr is not a tty here, so frames render one line each)
$CLI request rmsnorm --socket /tmp/mirage_ci_svc/s.sock \
  --max-block-ops 2 --workers 1 --budget 10 --progress \
  > /tmp/mirage_ci_svc/r_prog.json 2> /tmp/mirage_ci_svc/progress.log
grep -q 'nodes' /tmp/mirage_ci_svc/progress.log
grep -q '"cached": false' /tmp/mirage_ci_svc/r_prog.json
# clean shutdown: daemon exits, socket removed, journal agrees on two
# searches (the coalesced trio's one + the progress request's cold one)
$CLI request shutdown $REQ >/dev/null
wait "$SVC_PID"
test ! -e /tmp/mirage_ci_svc/s.sock
test "$(grep -c '"ev":"search.start"' /tmp/mirage_ci_svc/journal.jsonl)" -eq 2
# slow-request forensics: threshold 0 captures every optimize request
# into a per-rid report directory whose journal slice carries its rid
RID_DIR=$(ls -d /tmp/mirage_ci_svc/slow/*/ | head -1)
test -s "$RID_DIR/report.json" && test -s "$RID_DIR/journal.jsonl"
RID=$(basename "$RID_DIR")
test "$(grep -c "\"rid\":\"$RID\"" "$RID_DIR/journal.jsonl")" -eq \
  "$(grep -c . "$RID_DIR/journal.jsonl")"
dune exec tools/json_check.exe -- /tmp/mirage_ci_svc/journal.jsonl \
  /tmp/mirage_ci_svc/metrics_midload.json /tmp/mirage_ci_svc/metrics.json \
  "$RID_DIR/report.json" "$RID_DIR/journal.jsonl"

echo "== wire chaos smoke: hostile clients, typed rejections, clean drain"
# A quota-armed daemon faces concurrent mixed-behavior clients: honest
# requests, MIRAGE_FAULT-armed clients that emit torn/oversized/cut
# frames, an over-quota tenant, and an impossible deadline. Every
# rejection must be typed JSON (never a hang or raw disconnect), the
# daemon must answer normally afterwards, and a drained shutdown must
# leave no socket and no orphaned cache temp files.
rm -rf /tmp/mirage_ci_wire
mkdir -p /tmp/mirage_ci_wire
WREQ="--socket /tmp/mirage_ci_wire/s.sock --max-block-ops 3 --workers 1 --budget 10"
$CLI serve --socket /tmp/mirage_ci_wire/s.sock \
  --cache-dir /tmp/mirage_ci_wire/cache --max-block-ops 3 --workers 1 \
  --budget 10 --tenant-rate 0.001 --tenant-burst 1 \
  --frame-timeout 2 --idle-timeout 2 \
  > /tmp/mirage_ci_wire/serve.log 2>&1 &
WIRE_PID=$!
for _ in $(seq 1 50); do
  $CLI request status $WREQ >/dev/null 2>&1 && break
  sleep 0.2
done
# warm one honest entry
$CLI request rmsnorm $WREQ >/dev/null
# hostile clients in parallel: each MIRAGE_FAULT-armed CLI corrupts its
# own frame on the wire (exit nonzero locally); the daemon must survive
MIRAGE_FAULT="wire.torn:1.0:1" $CLI request status $WREQ \
  > /tmp/mirage_ci_wire/torn.json 2>&1 || true &
H1=$!
MIRAGE_FAULT="wire.disconnect:1.0:1" $CLI request status $WREQ \
  > /tmp/mirage_ci_wire/cut.json 2>&1 || true &
H2=$!
MIRAGE_FAULT="wire.oversize:1.0:1" $CLI request status $WREQ \
  > /tmp/mirage_ci_wire/big.json 2>&1 || true &
H3=$!
# an over-quota tenant: burst 1, near-zero refill — the second request
# must get the typed quota rejection with a retry hint, not a hang
$CLI request rmsnorm $WREQ --tenant ci > /tmp/mirage_ci_wire/t1.json || true
$CLI request rmsnorm $WREQ --tenant ci > /tmp/mirage_ci_wire/t2.json || true
grep -q '"status": "ok"' /tmp/mirage_ci_wire/t1.json
grep -q '"error": "quota_exceeded"' /tmp/mirage_ci_wire/t2.json
grep -q '"retry_after_s"' /tmp/mirage_ci_wire/t2.json
# a 1 ms deadline on a cold fingerprint either times out (typed) or
# lands with its search budget capped to the deadline ("deadline" in the
# result's degraded list) — never a full-budget search, never a hang
$CLI request rmsnorm --socket /tmp/mirage_ci_wire/s.sock \
  --max-block-ops 2 --workers 1 --budget 10 --deadline 1 \
  > /tmp/mirage_ci_wire/dl.json || true
grep -Eq '"error": "timeout"|"deadline"' /tmp/mirage_ci_wire/dl.json
wait "$H1" "$H2" "$H3" || true
# the daemon shrugged it all off: a retrying client lands a warm answer
$CLI request rmsnorm $WREQ --retry | grep -q '"cached": true'
# the wire counters saw the chaos (torn + disconnect + oversize frames)
$CLI request metrics $WREQ | grep -q '"service.wire.torn"'
# drained shutdown: socket gone, no orphaned cache temp files anywhere
$CLI request shutdown $WREQ --drain 2 >/dev/null
wait "$WIRE_PID"
test ! -e /tmp/mirage_ci_wire/s.sock
test -z "$(find /tmp/mirage_ci_wire/cache -name '.result.json.tmp.*' \
  -not -path '*/quarantine/*' 2>/dev/null)"

echo "== bench history regression gate (Fig. 7 + verifier + service + enum + codegen, 5%)"
# Gate against the committed baseline on a scratch copy so CI runs never
# dirty the tree; a real refresh re-runs `bench fig7 verify serve
# profile enum --history` in place. The verify suite's
# fast-over-reference ratios catch a fast-path performance regression
# the same way costs catch a cost-model one; the serve suite's
# warm-over-cold ratios catch a result cache that stopped caching (and
# its own 50x floor fails the suite). The profile suite self-gates:
# Obs.Profile record overhead must stay under 1% of a cold rmsnorm
# search's wall time. The enum suite is the parallel-scaling smoke: it
# measures 1- vs 4-domain cold enumeration on rmsnorm and hard-fails if
# a >=4-core host scales below 2x (on smaller hosts the number is
# recorded and drift-gated only — time-slicing domains on one core
# cannot speed up), and it hard-asserts the prune-query cache actually
# persists and answers from disk (warm solve time, disk_hits > 0). The
# codegen suite times the runnable backend's lower+compile wall for the
# rmsnorm winner (gated one-sided: only an increase fails) and records
# executed-vs-interpreter throughput.
cp BENCH_history.jsonl /tmp/mirage_ci_history.jsonl
dune exec bench/main.exe -- fig7 verify serve profile enum codegen \
  --history /tmp/mirage_ci_history.jsonl --gate 5 >/dev/null

echo "CI OK"
