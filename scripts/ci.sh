#!/usr/bin/env bash
# Tier-1 CI: build everything, run the test suites, then smoke-test the
# observability surface — the stats funnel, a Chrome trace, a full run
# report (report.json + trace.json + journal.jsonl), candidate forensics
# via `explain`, and the bench-history regression gate — and check that
# every JSON artifact we produce actually parses.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== smoke: mirage_cli stats (funnel invariant is checked in-process)"
dune exec bin/mirage_cli.exe -- stats rmsnorm \
  --budget 10 --workers 2 --trace /tmp/mirage_ci_trace.json

echo "== smoke: mirage_cli optimize --report (self-contained run dir)"
rm -rf /tmp/mirage_ci_run
dune exec bin/mirage_cli.exe -- optimize rmsnorm \
  --budget 2 --workers 2 --report /tmp/mirage_ci_run >/dev/null

echo "== smoke: explain resolves a journaled candidate"
dune exec bin/mirage_cli.exe -- explain /tmp/mirage_ci_run 0 >/dev/null

echo "== smoke: bench --json"
dune exec bench/main.exe -- fig7 --json /tmp/mirage_ci_bench.json >/dev/null

echo "== validate JSON artifacts (journal is checked line by line)"
dune exec tools/json_check.exe -- \
  /tmp/mirage_ci_trace.json /tmp/mirage_ci_bench.json \
  /tmp/mirage_ci_run/report.json /tmp/mirage_ci_run/trace.json \
  /tmp/mirage_ci_run/journal.jsonl

echo "== chaos smoke: enumerator crashes are quarantined, run still lands"
rm -rf /tmp/mirage_ci_chaos1
MIRAGE_FAULT="enum.block:1.0:2" dune exec bin/mirage_cli.exe -- \
  optimize rmsnorm --budget 2 --workers 2 \
  --report /tmp/mirage_ci_chaos1 >/dev/null
grep -q '"state": "\(ok\|degraded\)"' /tmp/mirage_ci_chaos1/report.json

echo "== chaos smoke: journal write failure degrades, never crashes"
rm -rf /tmp/mirage_ci_chaos2
MIRAGE_FAULT="journal.write:1.0:1" dune exec bin/mirage_cli.exe -- \
  optimize rmsnorm --budget 2 --workers 2 \
  --report /tmp/mirage_ci_chaos2 >/dev/null
grep -q '"state": "\(ok\|degraded\)"' /tmp/mirage_ci_chaos2/report.json

echo "== validate chaos artifacts (journals must have no torn lines)"
dune exec tools/json_check.exe -- \
  /tmp/mirage_ci_chaos1/report.json /tmp/mirage_ci_chaos1/journal.jsonl \
  /tmp/mirage_ci_chaos2/report.json /tmp/mirage_ci_chaos2/journal.jsonl

echo "== resume smoke: kill-and-resume lands in the same run dir"
rm -rf /tmp/mirage_ci_resume
dune exec bin/mirage_cli.exe -- optimize rmsnorm \
  --budget 1 --workers 2 --report /tmp/mirage_ci_resume >/dev/null
test -f /tmp/mirage_ci_resume/checkpoint.json
dune exec bin/mirage_cli.exe -- optimize rmsnorm \
  --budget 10 --workers 2 --resume /tmp/mirage_ci_resume >/dev/null
grep -q '"state": "\(ok\|degraded\)"' /tmp/mirage_ci_resume/report.json
dune exec tools/json_check.exe -- /tmp/mirage_ci_resume/checkpoint.json

echo "== bench history regression gate (Fig. 7 costs + verifier perf, 5%)"
# Gate against the committed baseline on a scratch copy so CI runs never
# dirty the tree; a real refresh re-runs `bench fig7 verify --history` in
# place. The verify suite's fast-over-reference ratios catch a fast-path
# performance regression the same way costs catch a cost-model one.
cp BENCH_history.jsonl /tmp/mirage_ci_history.jsonl
dune exec bench/main.exe -- fig7 verify \
  --history /tmp/mirage_ci_history.jsonl --gate 5 >/dev/null

echo "CI OK"
