#!/usr/bin/env bash
# Tier-1 CI: build everything, run the test suites, then smoke-test the
# observability surface (the stats funnel + a Chrome trace) and check
# that every JSON artifact we produce actually parses.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== smoke: mirage_cli stats (funnel invariant is checked in-process)"
dune exec bin/mirage_cli.exe -- stats rmsnorm \
  --budget 10 --workers 2 --trace /tmp/mirage_ci_trace.json

echo "== smoke: bench --json"
dune exec bench/main.exe -- fig7 --json /tmp/mirage_ci_bench.json >/dev/null

echo "== validate JSON artifacts"
dune exec tools/json_check.exe -- /tmp/mirage_ci_trace.json /tmp/mirage_ci_bench.json

echo "CI OK"
