#!/usr/bin/env bash
# Tier-1 CI: build everything, run the test suites, then smoke-test the
# observability surface — the stats funnel, a Chrome trace, a full run
# report (report.json + trace.json + journal.jsonl), candidate forensics
# via `explain`, and the bench-history regression gate — and check that
# every JSON artifact we produce actually parses.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== dune build @all"
dune build @all

echo "== dune runtest"
dune runtest

echo "== smoke: mirage_cli stats (funnel invariant is checked in-process)"
dune exec bin/mirage_cli.exe -- stats rmsnorm \
  --budget 10 --workers 2 --trace /tmp/mirage_ci_trace.json

echo "== smoke: mirage_cli optimize --report (self-contained run dir)"
rm -rf /tmp/mirage_ci_run
dune exec bin/mirage_cli.exe -- optimize rmsnorm \
  --budget 2 --workers 2 --report /tmp/mirage_ci_run >/dev/null

echo "== smoke: explain resolves a journaled candidate"
dune exec bin/mirage_cli.exe -- explain /tmp/mirage_ci_run 0 >/dev/null

echo "== smoke: bench --json"
dune exec bench/main.exe -- fig7 --json /tmp/mirage_ci_bench.json >/dev/null

echo "== validate JSON artifacts (journal is checked line by line)"
dune exec tools/json_check.exe -- \
  /tmp/mirage_ci_trace.json /tmp/mirage_ci_bench.json \
  /tmp/mirage_ci_run/report.json /tmp/mirage_ci_run/trace.json \
  /tmp/mirage_ci_run/journal.jsonl

echo "== bench history regression gate (Fig. 7 costs, 5% threshold)"
# Gate against the committed baseline on a scratch copy so CI runs never
# dirty the tree; a real refresh re-runs `bench fig7 --history` in place.
cp BENCH_history.jsonl /tmp/mirage_ci_history.jsonl
dune exec bench/main.exe -- fig7 \
  --history /tmp/mirage_ci_history.jsonl --gate 5 >/dev/null

echo "CI OK"
